//! Homomorphic evaluation: Add, plaintext Mult, and Rot — the three
//! operations the paper's convolution schemes are built from (Sec. II-B).
//!
//! Every operation optionally reports itself to an [`OpSink`] so the
//! pipeline simulator can replay exact operation traces (see the
//! `spot-pipeline` crate).

use crate::ciphertext::Ciphertext;
use crate::context::Context;
use crate::encoding::{galois_elt_column_swap, galois_elt_from_step, Plaintext};
use crate::keys::{GaloisKeys, KeySwitchKey};
use crate::poly::{Poly, PolyForm};
use spot_trace::{count, Counter};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The HE operation kinds a scheme performs, for cost accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HeOp {
    /// Client-side encryption of one ciphertext.
    Encrypt,
    /// Client-side decryption of one ciphertext.
    Decrypt,
    /// Ciphertext–ciphertext or ciphertext–plaintext addition.
    Add,
    /// Ciphertext–plaintext SIMD multiplication.
    MultPlain,
    /// Slot rotation (Galois automorphism + key switch).
    Rotate,
}

/// A sink receiving a callback per executed HE operation.
pub trait OpSink {
    /// Called once per HE operation.
    fn record(&mut self, op: HeOp);
}

/// An [`OpSink`] that simply counts operations by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Number of additions.
    pub add: u64,
    /// Number of plaintext multiplications.
    pub mult_plain: u64,
    /// Number of rotations.
    pub rotate: u64,
    /// Number of encryptions.
    pub encrypt: u64,
    /// Number of decryptions.
    pub decrypt: u64,
}

impl OpCounts {
    /// Adds another tally into this one (all fields are commutative
    /// sums, so merge order never affects the result — parallel workers
    /// can tally privately and merge afterwards).
    pub fn merge(&mut self, other: &OpCounts) {
        self.add += other.add;
        self.mult_plain += other.mult_plain;
        self.rotate += other.rotate;
        self.encrypt += other.encrypt;
        self.decrypt += other.decrypt;
    }

    /// Field-wise `self - earlier`, saturating at zero. With `earlier` a
    /// snapshot taken before a layer and `self` one taken after, the
    /// delta is that layer's exact operation tally (sums of commutative
    /// additions, so this holds even when workers recorded in parallel
    /// via [`AtomicOpCounts`]).
    pub fn delta(&self, earlier: &OpCounts) -> OpCounts {
        OpCounts {
            add: self.add.saturating_sub(earlier.add),
            mult_plain: self.mult_plain.saturating_sub(earlier.mult_plain),
            rotate: self.rotate.saturating_sub(earlier.rotate),
            encrypt: self.encrypt.saturating_sub(earlier.encrypt),
            decrypt: self.decrypt.saturating_sub(earlier.decrypt),
        }
    }

    /// Sum of all fields (quick "did anything run" check).
    pub fn total(&self) -> u64 {
        self.add + self.mult_plain + self.rotate + self.encrypt + self.decrypt
    }
}

/// A thread-safe [`OpSink`]: relaxed atomic tallies that parallel
/// workers record into concurrently. Relaxed `fetch_add`s commute, so
/// [`AtomicOpCounts::snapshot`] deltas attribute ops to a layer exactly
/// regardless of worker interleaving.
#[derive(Debug, Default)]
pub struct AtomicOpCounts {
    add: AtomicU64,
    mult_plain: AtomicU64,
    rotate: AtomicU64,
    encrypt: AtomicU64,
    decrypt: AtomicU64,
}

impl AtomicOpCounts {
    /// Creates a zeroed tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one operation (relaxed; callable from any thread).
    pub fn record(&self, op: HeOp) {
        let field = match op {
            HeOp::Add => &self.add,
            HeOp::MultPlain => &self.mult_plain,
            HeOp::Rotate => &self.rotate,
            HeOp::Encrypt => &self.encrypt,
            HeOp::Decrypt => &self.decrypt,
        };
        field.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds a finished private tally in (e.g. a worker's `OpCounts`).
    pub fn merge(&self, other: &OpCounts) {
        self.add.fetch_add(other.add, Ordering::Relaxed);
        self.mult_plain
            .fetch_add(other.mult_plain, Ordering::Relaxed);
        self.rotate.fetch_add(other.rotate, Ordering::Relaxed);
        self.encrypt.fetch_add(other.encrypt, Ordering::Relaxed);
        self.decrypt.fetch_add(other.decrypt, Ordering::Relaxed);
    }

    /// A point-in-time copy of the tally as a plain [`OpCounts`].
    pub fn snapshot(&self) -> OpCounts {
        OpCounts {
            add: self.add.load(Ordering::Relaxed),
            mult_plain: self.mult_plain.load(Ordering::Relaxed),
            rotate: self.rotate.load(Ordering::Relaxed),
            encrypt: self.encrypt.load(Ordering::Relaxed),
            decrypt: self.decrypt.load(Ordering::Relaxed),
        }
    }
}

impl OpSink for &AtomicOpCounts {
    fn record(&mut self, op: HeOp) {
        AtomicOpCounts::record(self, op);
    }
}

impl OpSink for OpCounts {
    fn record(&mut self, op: HeOp) {
        match op {
            HeOp::Add => self.add += 1,
            HeOp::MultPlain => self.mult_plain += 1,
            HeOp::Rotate => self.rotate += 1,
            HeOp::Encrypt => self.encrypt += 1,
            HeOp::Decrypt => self.decrypt += 1,
        }
    }
}

impl OpSink for () {
    fn record(&mut self, _op: HeOp) {}
}

/// Evaluates homomorphic operations on ciphertexts.
#[derive(Debug)]
pub struct Evaluator {
    ctx: Arc<Context>,
}

impl Evaluator {
    /// Creates an evaluator for a context.
    pub fn new(ctx: &Arc<Context>) -> Self {
        Self {
            ctx: Arc::clone(ctx),
        }
    }

    /// `a + b`.
    pub fn add(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        let mut out = a.clone();
        self.add_inplace(&mut out, b);
        out
    }

    /// `a += b`.
    pub fn add_inplace(&self, a: &mut Ciphertext, b: &Ciphertext) {
        count(Counter::AddOps, 1);
        a.c0.add_assign(&b.c0);
        a.c1.add_assign(&b.c1);
    }

    /// `a - b`.
    pub fn sub(&self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        count(Counter::AddOps, 1);
        let mut out = a.clone();
        out.c0.sub_assign(&b.c0);
        out.c1.sub_assign(&b.c1);
        out
    }

    /// Adds an encoded plaintext to a ciphertext (`ct + Δ·m`).
    pub fn add_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        count(Counter::AddOps, 1);
        let dm = pt.lift_scaled(&self.ctx);
        let mut out = a.clone();
        out.c0.add_assign(&dm);
        out
    }

    /// Subtracts an encoded plaintext from a ciphertext.
    pub fn sub_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        count(Counter::AddOps, 1);
        let mut dm = pt.lift_scaled(&self.ctx);
        dm.neg_assign();
        let mut out = a.clone();
        out.c0.add_assign(&dm);
        out
    }

    /// Multiplies a ciphertext by an encoded plaintext (SIMD slot-wise).
    ///
    /// For repeated use of the same plaintext, pre-lift it with
    /// [`Plaintext::lift`] and call [`Evaluator::multiply_lifted`].
    pub fn multiply_plain(&self, a: &Ciphertext, pt: &Plaintext) -> Ciphertext {
        let lifted = pt.lift(&self.ctx);
        self.multiply_lifted(a, &lifted)
    }

    /// Multiplies by a pre-lifted (NTT-form) plaintext.
    ///
    /// # Panics
    ///
    /// Panics if the lifted plaintext is not in NTT form.
    pub fn multiply_lifted(&self, a: &Ciphertext, lifted: &Poly) -> Ciphertext {
        assert_eq!(lifted.form(), PolyForm::Ntt, "plaintext must be lifted");
        count(Counter::MultPlain, 1);
        let mut out = a.clone();
        out.c0.mul_assign_ntt(lifted);
        out.c1.mul_assign_ntt(lifted);
        out
    }

    /// Key-switches `(c0, c1_auto)` where `c1_auto` decrypts under `s'`
    /// back to the canonical secret key, using RNS digit decomposition.
    ///
    /// Hot path: one scratch digit polynomial is reused across all `k`
    /// digits, residue rows are copied verbatim when the source modulus
    /// already bounds them (only larger digits pay a Barrett reduction),
    /// and the `digit * ksk` products accumulate through the fused
    /// [`Poly::add_mul_assign_ntt`] — no per-digit allocation or clone.
    fn key_switch(&self, c0: Poly, mut c1: Poly, ksk: &KeySwitchKey) -> Ciphertext {
        count(Counter::KeySwitch, 1);
        let ctx = &self.ctx;
        let k = ctx.moduli_count();
        c1.to_coeff();
        let mut acc0 = c0;
        acc0.to_ntt();
        let mut acc1 = Poly::zero(ctx, PolyForm::Ntt);
        let mut digit = Poly::zero(ctx, PolyForm::Coeff);
        for i in 0..k {
            // Digit i: residues of c1 mod q_i, lifted to every modulus.
            let q_i = ctx.moduli()[i].value();
            for (j, m) in ctx.moduli().iter().enumerate() {
                let src = c1.residues(i);
                let dst = digit.residues_mut(j);
                if q_i <= m.value() {
                    // Residues mod q_i are already reduced mod the
                    // (equal or larger) target modulus.
                    dst.copy_from_slice(src);
                } else {
                    (crate::arch::kernels().reduce)(m, dst, src);
                }
            }
            digit.reinterpret_form(PolyForm::Coeff);
            digit.to_ntt();
            let (b_i, a_i) = &ksk.pairs[i];
            acc0.add_mul_assign_ntt(&digit, b_i);
            acc1.add_mul_assign_ntt(&digit, a_i);
        }
        Ciphertext { c0: acc0, c1: acc1 }
    }

    /// Applies the Galois automorphism `X → X^g` to a ciphertext and
    /// key-switches back to the canonical key.
    ///
    /// # Panics
    ///
    /// Panics if no Galois key for `g` is present.
    pub fn apply_galois(&self, a: &Ciphertext, g: usize, keys: &GaloisKeys) -> Ciphertext {
        count(Counter::Rotate, 1);
        let ksk = keys
            .keys
            .get(&g)
            .unwrap_or_else(|| panic!("missing Galois key for element {g}"));
        let mut c0 = a.c0.clone();
        c0.to_coeff();
        let c0g = c0.apply_galois(g);
        let mut c1 = a.c1.clone();
        c1.to_coeff();
        let c1g = c1.apply_galois(g);
        self.key_switch(c0g, c1g, ksk)
    }

    /// Rotates both slot rows left by `steps` (negative = right).
    ///
    /// # Panics
    ///
    /// Panics if `steps == 0`, `|steps| >= N/2`, or the key is missing.
    pub fn rotate_rows(&self, a: &Ciphertext, steps: i64, keys: &GaloisKeys) -> Ciphertext {
        let g = galois_elt_from_step(steps, self.ctx.degree());
        self.apply_galois(a, g, keys)
    }

    /// Swaps the two slot rows.
    pub fn rotate_columns(&self, a: &Ciphertext, keys: &GaloisKeys) -> Ciphertext {
        let g = galois_elt_column_swap(self.ctx.degree());
        self.apply_galois(a, g, keys)
    }

    /// The Galois elements needed to support `rotate_rows` for each step
    /// in `steps` plus (optionally) the column swap.
    pub fn galois_elements(&self, steps: &[i64], include_column_swap: bool) -> Vec<usize> {
        let n = self.ctx.degree();
        let mut elts: Vec<usize> = steps
            .iter()
            .filter(|&&s| s != 0)
            .map(|&s| galois_elt_from_step(s, n))
            .collect();
        if include_column_swap {
            elts.push(galois_elt_column_swap(n));
        }
        elts.sort_unstable();
        elts.dedup();
        elts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{rotate_slots_reference, swap_rows_reference, BatchEncoder};
    use crate::encryptor::{Decryptor, Encryptor};
    use crate::keys::KeyGenerator;
    use crate::params::{EncryptionParams, ParamLevel};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Setup {
        ctx: Arc<Context>,
        encoder: BatchEncoder,
        encryptor: Encryptor,
        decryptor: Decryptor,
        evaluator: Evaluator,
        kg: KeyGenerator,
        rng: StdRng,
    }

    fn setup() -> Setup {
        let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
        let mut rng = StdRng::seed_from_u64(7);
        let kg = KeyGenerator::new(&ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        Setup {
            encoder: BatchEncoder::new(&ctx),
            encryptor: Encryptor::new(&ctx, pk),
            decryptor: Decryptor::new(&ctx, kg.secret_key().clone()),
            evaluator: Evaluator::new(&ctx),
            kg,
            rng,
            ctx,
        }
    }

    #[test]
    fn add_is_slotwise() {
        let mut s = setup();
        let t = s.ctx.params().plain_modulus();
        let a: Vec<u64> = (0..256u64).map(|i| i * 3).collect();
        let b: Vec<u64> = (0..256u64).map(|i| t - 1 - i).collect();
        let ca = s.encryptor.encrypt(&s.encoder.encode(&a), &mut s.rng);
        let cb = s.encryptor.encrypt(&s.encoder.encode(&b), &mut s.rng);
        let sum = s.evaluator.add(&ca, &cb);
        let out = s.encoder.decode(&s.decryptor.decrypt(&sum));
        for i in 0..256 {
            assert_eq!(out[i], (a[i] + b[i]) % t);
        }
    }

    #[test]
    fn multiply_plain_is_slotwise() {
        let mut s = setup();
        let t = s.ctx.params().plain_modulus();
        let a: Vec<u64> = (0..128u64).map(|i| i + 1).collect();
        let b: Vec<u64> = (0..128u64).map(|i| 2 * i + 5).collect();
        let ca = s.encryptor.encrypt(&s.encoder.encode(&a), &mut s.rng);
        let prod = s.evaluator.multiply_plain(&ca, &s.encoder.encode(&b));
        let budget = s.decryptor.noise_budget(&prod);
        assert!(budget > 10, "noise budget exhausted: {budget}");
        let out = s.encoder.decode(&s.decryptor.decrypt(&prod));
        for i in 0..128 {
            assert_eq!(out[i], (a[i] * b[i]) % t, "slot {i}");
        }
        // slots where b is zero (beyond 128) must be zero
        assert!(out[128..].iter().all(|&v| v == 0));
    }

    #[test]
    fn rotation_matches_reference() {
        let mut s = setup();
        let n = s.ctx.degree();
        let values: Vec<u64> = (0..n as u64).map(|i| i % 1000).collect();
        let ct = s.encryptor.encrypt(&s.encoder.encode(&values), &mut s.rng);
        let steps_list = [1i64, 7, -2];
        let elts = s.evaluator.galois_elements(&steps_list, true);
        let gk = s.kg.galois_keys(&elts, &mut s.rng);
        for steps in steps_list {
            let rot = s.evaluator.rotate_rows(&ct, steps, &gk);
            assert!(s.decryptor.noise_budget(&rot) > 10);
            let out = s.encoder.decode(&s.decryptor.decrypt(&rot));
            assert_eq!(out, rotate_slots_reference(&values, steps), "step {steps}");
        }
        let swapped = s.evaluator.rotate_columns(&ct, &gk);
        let out = s.encoder.decode(&s.decryptor.decrypt(&swapped));
        assert_eq!(out, swap_rows_reference(&values));
    }

    #[test]
    fn mult_then_rotate_then_add_chain() {
        // The exact shape of a GAZELLE-style convolution step.
        let mut s = setup();
        let t = s.ctx.params().plain_modulus();
        let values: Vec<u64> = (0..64u64).map(|i| i + 1).collect();
        let weights: Vec<u64> = vec![3u64; 64];
        let ct = s.encryptor.encrypt(&s.encoder.encode(&values), &mut s.rng);
        let elts = s.evaluator.galois_elements(&[1], false);
        let gk = s.kg.galois_keys(&elts, &mut s.rng);
        let prod = s.evaluator.multiply_plain(&ct, &s.encoder.encode(&weights));
        let rot = s.evaluator.rotate_rows(&prod, 1, &gk);
        let sum = s.evaluator.add(&prod, &rot);
        assert!(s.decryptor.noise_budget(&sum) > 10);
        let out = s.encoder.decode(&s.decryptor.decrypt(&sum));
        for i in 0..63 {
            assert_eq!(out[i], (3 * values[i] + 3 * values[i + 1]) % t);
        }
    }

    #[test]
    fn sub_plain_masks_share() {
        // Server-side additive masking: ct - r, client decrypts m - r.
        let mut s = setup();
        let t = s.ctx.params().plain_modulus();
        let values = vec![100u64; 16];
        let mask = vec![30u64; 16];
        let ct = s.encryptor.encrypt(&s.encoder.encode(&values), &mut s.rng);
        let masked = s.evaluator.sub_plain(&ct, &s.encoder.encode(&mask));
        let out = s.encoder.decode(&s.decryptor.decrypt(&masked));
        for i in 0..16 {
            assert_eq!((out[i] + mask[i]) % t, values[i]);
        }
    }

    #[test]
    fn op_counts_sink() {
        let mut counts = OpCounts::default();
        counts.record(HeOp::Add);
        counts.record(HeOp::Rotate);
        counts.record(HeOp::Rotate);
        assert_eq!(counts.add, 1);
        assert_eq!(counts.rotate, 2);
        assert_eq!(counts.mult_plain, 0);
    }

    #[test]
    fn op_counts_delta_is_exact_per_layer() {
        let mut running = OpCounts::default();
        running.record(HeOp::Rotate);
        running.record(HeOp::MultPlain);
        let before_layer = running;
        running.record(HeOp::Rotate);
        running.record(HeOp::Add);
        running.record(HeOp::Add);
        let layer = running.delta(&before_layer);
        assert_eq!(layer.rotate, 1);
        assert_eq!(layer.add, 2);
        assert_eq!(layer.mult_plain, 0);
        assert_eq!(layer.total(), 3);
        // Saturation: a backwards delta is zero, not a wrap.
        assert_eq!(before_layer.delta(&running).total(), 0);
    }

    #[test]
    fn atomic_op_counts_record_and_merge() {
        let shared = AtomicOpCounts::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let sink: &AtomicOpCounts = &shared;
                    for _ in 0..100 {
                        sink.record(HeOp::Rotate);
                        sink.record(HeOp::MultPlain);
                    }
                });
            }
        });
        let mut private = OpCounts::default();
        private.record(HeOp::Encrypt);
        shared.merge(&private);
        let snap = shared.snapshot();
        assert_eq!(snap.rotate, 400);
        assert_eq!(snap.mult_plain, 400);
        assert_eq!(snap.encrypt, 1);
        assert_eq!(snap.add, 0);
    }

    #[test]
    fn atomic_snapshot_delta_attributes_layers() {
        let shared = AtomicOpCounts::new();
        shared.record(HeOp::Rotate);
        let before = shared.snapshot();
        shared.record(HeOp::Rotate);
        shared.record(HeOp::Decrypt);
        let after = shared.snapshot();
        let layer = after.delta(&before);
        assert_eq!(layer.rotate, 1);
        assert_eq!(layer.decrypt, 1);
        assert_eq!(layer.total(), 2);
    }
}
