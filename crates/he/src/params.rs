//! BFV encryption parameter sets.
//!
//! Parameter levels mirror the SEAL 128-bit-security defaults the paper
//! uses (Table IV / Table VI): polynomial modulus degree
//! `N ∈ {2048, 4096, 8192, 16384}` with total coefficient-modulus sizes of
//! 54, 109, 218 and 438 bits respectively, and a common plaintext modulus
//! `t ≈ 2^20` chosen prime with `t ≡ 1 (mod 32768)` so SIMD batching works
//! at every level.

use crate::primes::{ntt_primes, prime_at_least};

/// The four parameter levels evaluated in the paper (Table IV).
///
/// Smaller levels have fewer slots but much cheaper HE operations — the
/// flexibility SPOT's structure patching exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ParamLevel {
    /// `N = 2048`, 54-bit `q`. Supports encrypt/add/plain-mult only
    /// (no rotation keys fit the noise budget at this size).
    N2048,
    /// `N = 4096`, 109-bit `q` — the smallest rotation-capable level and
    /// SPOT's workhorse.
    N4096,
    /// `N = 8192`, 218-bit `q` — CrypTFlow2's minimum practical level.
    N8192,
    /// `N = 16384`, 438-bit `q`.
    N16384,
}

impl ParamLevel {
    /// All levels, smallest first.
    pub const ALL: [ParamLevel; 4] = [
        ParamLevel::N2048,
        ParamLevel::N4096,
        ParamLevel::N8192,
        ParamLevel::N16384,
    ];

    /// Polynomial modulus degree `N` (equal to the SIMD slot count `S'`).
    pub fn degree(self) -> usize {
        match self {
            ParamLevel::N2048 => 2048,
            ParamLevel::N4096 => 4096,
            ParamLevel::N8192 => 8192,
            ParamLevel::N16384 => 16384,
        }
    }

    /// Bit sizes of the coefficient-modulus primes (SEAL-style defaults,
    /// 128-bit security per the HE standard).
    pub fn coeff_modulus_bits(self) -> &'static [u32] {
        match self {
            ParamLevel::N2048 => &[54],
            ParamLevel::N4096 => &[36, 36, 37],
            ParamLevel::N8192 => &[43, 43, 44, 44, 44],
            ParamLevel::N16384 => &[48, 48, 48, 49, 49, 49, 49, 49, 49],
        }
    }

    /// Total coefficient modulus size in bits (the `co_mod` column of
    /// Table VI).
    pub fn total_coeff_bits(self) -> u32 {
        self.coeff_modulus_bits().iter().sum()
    }

    /// Whether rotations (Galois key switching) are supported at this level.
    pub fn supports_rotation(self) -> bool {
        !matches!(self, ParamLevel::N2048)
    }

    /// The smallest rotation-capable level whose slot count is at least
    /// `min_slots`, if any.
    pub fn smallest_with_slots(min_slots: usize) -> Option<ParamLevel> {
        ParamLevel::ALL
            .into_iter()
            .find(|l| l.supports_rotation() && l.degree() >= min_slots)
    }
}

impl std::fmt::Display for ParamLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "D={}", self.degree())
    }
}

/// Fully resolved encryption parameters: degree, concrete coefficient
/// primes and the plaintext modulus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptionParams {
    level: ParamLevel,
    degree: usize,
    coeff_moduli: Vec<u64>,
    plain_modulus: u64,
}

/// The shared plaintext modulus: smallest prime `>= 2^20` congruent to
/// `1 mod 32768`, so batching works for every supported degree.
pub fn default_plain_modulus() -> u64 {
    prime_at_least(1 << 20, 16384)
}

impl EncryptionParams {
    /// Builds the standard parameters for a level with the default
    /// plaintext modulus.
    pub fn new(level: ParamLevel) -> Self {
        Self::with_plain_modulus(level, default_plain_modulus())
    }

    /// Builds parameters with a custom plaintext modulus.
    ///
    /// # Panics
    ///
    /// Panics if `plain_modulus` is not congruent to `1 mod 2N` (batching
    /// would be impossible).
    pub fn with_plain_modulus(level: ParamLevel, plain_modulus: u64) -> Self {
        let degree = level.degree();
        assert_eq!(
            plain_modulus % (2 * degree as u64),
            1,
            "plaintext modulus must be 1 mod 2N for batching"
        );
        let mut coeff_moduli = Vec::new();
        // Group requested bit sizes and draw distinct primes per size.
        let bits_list = level.coeff_modulus_bits();
        let mut by_size: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
        for &b in bits_list {
            *by_size.entry(b).or_insert(0) += 1;
        }
        for (&bits, &count) in &by_size {
            coeff_moduli.extend(ntt_primes(bits, degree, count));
        }
        Self {
            level,
            degree,
            coeff_moduli,
            plain_modulus,
        }
    }

    /// Builds parameters from an explicit list of coefficient moduli
    /// (used by modulus switching to derive reduced parameter sets).
    ///
    /// # Panics
    ///
    /// Panics if `moduli` is empty or the plaintext modulus is not
    /// `1 mod 2N`.
    pub fn with_explicit_moduli(level: ParamLevel, moduli: Vec<u64>, plain_modulus: u64) -> Self {
        let degree = level.degree();
        assert!(!moduli.is_empty(), "need at least one coefficient modulus");
        assert_eq!(
            plain_modulus % (2 * degree as u64),
            1,
            "plaintext modulus must be 1 mod 2N for batching"
        );
        Self {
            level,
            degree,
            coeff_moduli: moduli,
            plain_modulus,
        }
    }

    /// The parameter level.
    pub fn level(&self) -> ParamLevel {
        self.level
    }

    /// Polynomial modulus degree `N`.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// SIMD slot count (equals `N` for BFV batching).
    pub fn slot_count(&self) -> usize {
        self.degree
    }

    /// The RNS coefficient moduli.
    pub fn coeff_moduli(&self) -> &[u64] {
        &self.coeff_moduli
    }

    /// The plaintext modulus `t`.
    pub fn plain_modulus(&self) -> u64 {
        self.plain_modulus
    }

    /// Serialized bytes of one polynomial: residues bit-packed at each
    /// modulus's width.
    pub fn poly_bytes(&self) -> usize {
        self.coeff_moduli
            .iter()
            .map(|&q| (self.degree * (64 - q.leading_zeros() as usize)).div_ceil(8))
            .sum()
    }

    /// Serialized size of one ciphertext in bytes (2 polynomials,
    /// residues bit-packed at each modulus's width, plus a 16-byte
    /// header) — comparable to the paper's Table IV sizes.
    pub fn ciphertext_bytes(&self) -> usize {
        2 * self.poly_bytes() + 16
    }

    /// Serialized size of the public key in bytes (same shape as a
    /// ciphertext).
    pub fn public_key_bytes(&self) -> usize {
        self.ciphertext_bytes()
    }

    /// Serialized size of the secret key in bytes.
    pub fn secret_key_bytes(&self) -> usize {
        self.poly_bytes() + 16
    }

    /// Serialized size of one Galois key (a key-switching key with one
    /// digit per RNS prime).
    pub fn galois_key_bytes(&self) -> usize {
        2 * self.coeff_moduli.len() * self.poly_bytes() + 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::primes::is_prime;

    #[test]
    fn levels_have_expected_sizes() {
        assert_eq!(ParamLevel::N4096.degree(), 4096);
        assert_eq!(ParamLevel::N4096.total_coeff_bits(), 109);
        assert_eq!(ParamLevel::N8192.total_coeff_bits(), 218);
        assert_eq!(ParamLevel::N16384.total_coeff_bits(), 438);
        assert_eq!(ParamLevel::N2048.total_coeff_bits(), 54);
    }

    #[test]
    fn params_build_with_valid_primes() {
        for level in [ParamLevel::N2048, ParamLevel::N4096, ParamLevel::N8192] {
            let p = EncryptionParams::new(level);
            assert_eq!(p.coeff_moduli().len(), level.coeff_modulus_bits().len());
            for &q in p.coeff_moduli() {
                assert!(is_prime(q));
                assert_eq!(q % (2 * p.degree() as u64), 1);
            }
            assert!(is_prime(p.plain_modulus()));
            // all moduli distinct
            let mut sorted = p.coeff_moduli().to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), p.coeff_moduli().len());
        }
    }

    #[test]
    fn rotation_support() {
        assert!(!ParamLevel::N2048.supports_rotation());
        assert!(ParamLevel::N4096.supports_rotation());
        assert_eq!(
            ParamLevel::smallest_with_slots(3000),
            Some(ParamLevel::N4096)
        );
        assert_eq!(
            ParamLevel::smallest_with_slots(5000),
            Some(ParamLevel::N8192)
        );
        assert_eq!(ParamLevel::smallest_with_slots(100_000), None);
    }

    #[test]
    fn ciphertext_sizes_scale_with_level() {
        let small = EncryptionParams::new(ParamLevel::N4096).ciphertext_bytes();
        let big = EncryptionParams::new(ParamLevel::N8192).ciphertext_bytes();
        assert!(big > 2 * small);
        // Same order of magnitude as the paper's Table IV (131697 B at D=4096).
        assert!((100_000..300_000).contains(&small));
    }
}
