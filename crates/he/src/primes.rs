//! Prime generation for NTT-friendly moduli.
//!
//! BFV needs coefficient moduli `q_i ≡ 1 (mod 2N)` so that the negacyclic
//! NTT of degree `N` exists modulo each prime, and a plaintext modulus with
//! the same property for SIMD batching. This module provides deterministic
//! Miller–Rabin primality testing (exact for all `u64`) and searches for
//! such primes at requested bit sizes.

use crate::modulus::Modulus;

/// Deterministic Miller–Rabin for 64-bit integers.
///
/// Uses the known-sufficient witness set for `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let m = Modulus::new(n);
    let mut d = n - 1;
    let mut r = 0u32;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for &a in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = m.pow(a, d);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = m.mul(x, x);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds `count` distinct primes of exactly `bits` bits with
/// `p ≡ 1 (mod 2 * degree)`, searching downward from `2^bits - 1`.
///
/// # Panics
///
/// Panics if `bits` is out of `(log2(2*degree), 62]` or not enough primes
/// exist (which cannot happen for the parameter sets used here).
pub fn ntt_primes(bits: u32, degree: usize, count: usize) -> Vec<u64> {
    assert!((2..=62).contains(&bits), "prime bit size out of range");
    let step = 2 * degree as u64;
    assert!(
        (1u64 << (bits - 1)) > step,
        "prime size too small for degree"
    );
    let mut out = Vec::with_capacity(count);
    // Largest candidate of the form k*2N + 1 below 2^bits.
    let top = (1u64 << bits) - 1;
    let mut cand = top - ((top - 1) % step);
    while out.len() < count {
        assert!(
            cand >= (1u64 << (bits - 1)),
            "exhausted {bits}-bit primes congruent to 1 mod {step}"
        );
        if is_prime(cand) {
            out.push(cand);
        }
        cand -= step;
    }
    out
}

/// Finds the smallest prime `>= lower_bound` with `p ≡ 1 (mod 2 * degree)`.
pub fn prime_at_least(lower_bound: u64, degree: usize) -> u64 {
    let step = 2 * degree as u64;
    let mut cand = lower_bound + ((step + 1 - (lower_bound % step)) % step);
    if cand < lower_bound {
        cand += step;
    }
    loop {
        if is_prime(cand) {
            return cand;
        }
        cand += step;
    }
}

/// Finds a generator of the multiplicative group mod prime `p` and returns
/// a primitive `order`-th root of unity (`order` must divide `p - 1`).
pub fn primitive_root(p: u64, order: u64) -> u64 {
    assert_eq!((p - 1) % order, 0, "order must divide p-1");
    let m = Modulus::new(p);
    let cofactor = (p - 1) / order;
    // Try small candidates; a primitive order-th root g satisfies
    // g^(order/2) != 1 for even order (order is a power of two here).
    for base in 2..p {
        let g = m.pow(base, cofactor);
        if g == 1 {
            continue;
        }
        if m.pow(g, order / 2) == p - 1 {
            return g;
        }
    }
    unreachable!("no primitive root found for prime {p}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_primes() {
        let primes: Vec<u64> = (0..60).filter(|&n| is_prime(n)).collect();
        assert_eq!(
            primes,
            vec![2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59]
        );
    }

    #[test]
    fn known_composites() {
        // Carmichael numbers and strong-pseudoprime traps.
        for &n in &[561u64, 1105, 1729, 3215031751, 3825123056546413051] {
            assert!(!is_prime(n), "{n} wrongly reported prime");
        }
        assert!(is_prime((1u64 << 61) - 1)); // Mersenne prime 2^61 - 1
    }

    #[test]
    fn ntt_primes_are_congruent() {
        for &(bits, degree) in &[(36u32, 4096usize), (43, 8192), (48, 16384), (54, 2048)] {
            let ps = ntt_primes(bits, degree, 3);
            for &p in &ps {
                assert!(is_prime(p));
                assert_eq!(p % (2 * degree as u64), 1);
                assert_eq!(64 - p.leading_zeros(), bits);
            }
            // distinct
            assert!(ps[0] != ps[1] && ps[1] != ps[2]);
        }
    }

    #[test]
    fn primitive_root_has_exact_order() {
        let degree = 4096usize;
        let p = ntt_primes(36, degree, 1)[0];
        let m = Modulus::new(p);
        let order = 2 * degree as u64;
        let g = primitive_root(p, order);
        assert_eq!(m.pow(g, order), 1);
        assert_eq!(m.pow(g, order / 2), p - 1);
    }

    #[test]
    fn plaintext_prime_near_2_20() {
        let t = prime_at_least(1 << 20, 16384);
        assert!(is_prime(t));
        assert_eq!(t % 32768, 1);
        assert!((1 << 20..(1 << 21)).contains(&t));
    }
}
