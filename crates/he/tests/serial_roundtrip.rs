//! Property tests for the validated wire serialization: encode→decode
//! identity for ciphertexts (fresh and mod-switched) and key material
//! at N = 4096 and N = 8192, plus rejection (never a panic) of
//! truncated and corrupted inputs.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot_he::ciphertext::Ciphertext;
use spot_he::context::Context;
use spot_he::encoding::BatchEncoder;
use spot_he::encryptor::{Decryptor, Encryptor};
use spot_he::keys::KeyGenerator;
use spot_he::modswitch::ModSwitch;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_he::serial::{
    galois_keys_from_bytes, galois_keys_to_bytes, public_key_from_bytes, public_key_to_bytes,
};
use std::sync::{Arc, OnceLock};

fn ctx(level: ParamLevel) -> &'static Arc<Context> {
    static N4096: OnceLock<Arc<Context>> = OnceLock::new();
    static N8192: OnceLock<Arc<Context>> = OnceLock::new();
    match level {
        ParamLevel::N4096 => N4096.get_or_init(|| Context::new(EncryptionParams::new(level))),
        ParamLevel::N8192 => N8192.get_or_init(|| Context::new(EncryptionParams::new(level))),
        _ => unreachable!("test levels"),
    }
}

fn level_of(code: u8) -> ParamLevel {
    if code == 0 {
        ParamLevel::N4096
    } else {
        ParamLevel::N8192
    }
}

fn encrypt_random(ctx: &Arc<Context>, seed: u64) -> Ciphertext {
    let mut rng = StdRng::seed_from_u64(seed);
    let kg = KeyGenerator::new(ctx, &mut rng);
    let enc = Encryptor::new(ctx, kg.public_key(&mut rng));
    let encoder = BatchEncoder::new(ctx);
    let t = ctx.params().plain_modulus();
    let slots: Vec<u64> = (0..ctx.degree()).map(|i| (seed + i as u64) % t).collect();
    enc.encrypt(&encoder.encode(&slots), &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn ciphertext_roundtrip_is_bit_identical(level in 0u8..2, seed in 0u64..1_000_000) {
        let ctx = ctx(level_of(level));
        let ct = encrypt_random(ctx, seed);
        let bytes = ct.to_bytes();
        let back = Ciphertext::try_from_bytes(ctx, &bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn modswitched_ciphertext_roundtrips_in_target_context(seed in 0u64..1_000_000) {
        // N8192 carries ≥ 2 RNS primes, so one switch is always legal.
        let src = ctx(ParamLevel::N8192);
        let ct = encrypt_random(src, seed);
        let sw = ModSwitch::new(src);
        let small = sw.switch(&ct);
        let bytes = small.to_bytes();
        let tgt = sw.target_context();
        let back = Ciphertext::try_from_bytes(tgt, &bytes)
            .map_err(|e| TestCaseError::fail(format!("decode failed: {e}")))?;
        prop_assert_eq!(back.to_bytes(), bytes);
        // The switched blob no longer parses in the source context.
        prop_assert!(Ciphertext::try_from_bytes(src, &bytes).is_err());
    }

    #[test]
    fn key_material_roundtrips(level in 0u8..2, seed in 0u64..1_000_000) {
        let ctx = ctx(level_of(level));
        let mut rng = StdRng::seed_from_u64(seed);
        let kg = KeyGenerator::new(ctx, &mut rng);
        let pk = kg.public_key(&mut rng);
        let pk_bytes = public_key_to_bytes(&pk);
        let pk2 = public_key_from_bytes(ctx, &pk_bytes)
            .map_err(|e| TestCaseError::fail(format!("pk decode: {e}")))?;
        prop_assert_eq!(public_key_to_bytes(&pk2), pk_bytes);

        let gk = kg.galois_keys(&[3, 9, ctx.degree() * 2 - 1], &mut rng);
        let gk_bytes = galois_keys_to_bytes(&gk);
        let gk2 = galois_keys_from_bytes(ctx, &gk_bytes)
            .map_err(|e| TestCaseError::fail(format!("gk decode: {e}")))?;
        prop_assert_eq!(galois_keys_to_bytes(&gk2), gk_bytes);
    }

    #[test]
    fn truncation_rejected_without_panic(level in 0u8..2, seed in 0u64..1_000_000, cut in 1usize..4096) {
        let ctx = ctx(level_of(level));
        let bytes = encrypt_random(ctx, seed).to_bytes();
        let cut = cut.min(bytes.len());
        prop_assert!(Ciphertext::try_from_bytes(ctx, &bytes[..bytes.len() - cut]).is_err());
        // Trailing garbage is a length mismatch, not a prefix parse.
        let mut extended = bytes.clone();
        extended.push(0);
        prop_assert!(Ciphertext::try_from_bytes(ctx, &extended).is_err());
    }

    #[test]
    fn garbage_bytes_rejected_without_panic(blob in collection::vec(0u8..=255, 0..4096)) {
        let c4 = ctx(ParamLevel::N4096);
        let _ = Ciphertext::try_from_bytes(c4, &blob);
        let _ = public_key_from_bytes(c4, &blob);
        let _ = galois_keys_from_bytes(c4, &blob);
        // Reaching here without a panic is the property; decoding
        // arbitrary bytes must fail closed.
        prop_assert!(Ciphertext::try_from_bytes(c4, &blob).is_err() || blob.len() == c4.params().ciphertext_bytes());
    }

    #[test]
    fn corrupted_residues_rejected_or_decode_to_valid_ct(seed in 0u64..1_000_000, flip in 16usize..4096) {
        let ctx = ctx(ParamLevel::N4096);
        let ct = encrypt_random(ctx, seed);
        let mut bytes = ct.to_bytes();
        let i = 16 + (flip % (bytes.len() - 16));
        bytes[i] ^= 0xFF;
        // A bit-flip either fails validation (residue out of range) or
        // still decodes to *some* structurally valid ciphertext that
        // re-serializes to the same bytes — never a panic, never an
        // out-of-range residue accepted.
        if let Ok(back) = Ciphertext::try_from_bytes(ctx, &bytes) {
            prop_assert_eq!(back.to_bytes(), bytes);
        }
    }
}

/// Decrypt-correctness across the wire: what the server decodes is the
/// same ciphertext the client encrypted.
#[test]
fn roundtripped_ciphertext_still_decrypts() {
    for level in [ParamLevel::N4096, ParamLevel::N8192] {
        let ctx = ctx(level);
        let mut rng = StdRng::seed_from_u64(4242);
        let kg = KeyGenerator::new(ctx, &mut rng);
        let enc = Encryptor::new(ctx, kg.public_key(&mut rng));
        let dec = Decryptor::new(ctx, kg.secret_key().clone());
        let encoder = BatchEncoder::new(ctx);
        let t = ctx.params().plain_modulus();
        let slots: Vec<u64> = (0..ctx.degree()).map(|i| (i as u64 * 31 + 7) % t).collect();
        let ct = enc.encrypt(&encoder.encode(&slots), &mut rng);
        let back = Ciphertext::try_from_bytes(ctx, &ct.to_bytes()).expect("roundtrip");
        assert_eq!(encoder.decode(&dec.decrypt(&back)), slots);
    }
}
