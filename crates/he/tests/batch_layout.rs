//! Property tests for [`BatchLayout`], the cross-image SIMD-slot
//! interleaving: packing is lossless per image (ragged batches, both
//! ring sizes, both position models), uncovered slots stay zero, and
//! scattered masks carry exactly each image's own randomness.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spot_he::encoding::BatchLayout;

/// Builds a structurally valid layout from raw generator draws:
/// `blocks * groups * piece_slots` fills the lane exactly, the stride
/// fits the position count of the chosen position model.
fn build_layout(
    lane_sel: u32,
    log_blocks: u32,
    log_groups: u32,
    lane_major_sel: u32,
    raw: u32,
) -> BatchLayout {
    // Lane sizes of the two supported rings (N/2 for N4096 and N8192).
    let lane_size = if lane_sel == 0 { 2048 } else { 4096 };
    let blocks = 1usize << log_blocks;
    let groups = 1usize << log_groups;
    let piece_slots = lane_size / (blocks * groups);
    let lane_major = lane_major_sel == 1;
    let positions = if lane_major { 2 * groups } else { groups };
    let stride = 1 + (raw as usize % 64) % positions;
    BatchLayout::new(lane_size, blocks, groups, piece_slots, stride, lane_major)
}

/// A ragged batch (1..=capacity images) of random full-ring rows.
fn build_rows(layout: &BatchLayout, raw: u32, seed: u64) -> Vec<Vec<u64>> {
    let batch = 1 + (raw as usize / 64) % layout.capacity();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..batch)
        .map(|_| {
            (0..2 * layout.lane_size)
                .map(|_| rng.gen_range(0..1000u64))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `unpack_image` inverts `pack_images` for every image of a
    /// ragged batch.
    #[test]
    fn pack_unpack_roundtrip(
        lane_sel in 0u32..2,
        log_blocks in 0u32..3,
        log_groups in 1u32..6,
        lane_major_sel in 0u32..2,
        raw in 0u32..4096,
        seed in 0u64..1_000_000,
    ) {
        let layout = build_layout(lane_sel, log_blocks, log_groups, lane_major_sel, raw);
        let rows = build_rows(&layout, raw, seed);
        // Reduce each raw row to a valid single-image row (data only at
        // positions 0..stride — exactly what the B=1 packing emits).
        let images: Vec<Vec<u64>> = rows.iter().map(|r| layout.unpack_image(r, 0)).collect();
        let shared = layout.pack_images(&images);
        for (b, img) in images.iter().enumerate() {
            prop_assert_eq!(&layout.unpack_image(&shared, b), img, "image {}", b);
        }
    }

    /// Slots not covered by any image's positions stay zero in the
    /// shared row (they carry no data, so masking can skip them).
    #[test]
    fn uncovered_slots_stay_zero(
        lane_sel in 0u32..2,
        log_blocks in 0u32..3,
        log_groups in 1u32..6,
        lane_major_sel in 0u32..2,
        raw in 0u32..4096,
        seed in 0u64..1_000_000,
    ) {
        let layout = build_layout(lane_sel, log_blocks, log_groups, lane_major_sel, raw);
        let rows = build_rows(&layout, raw, seed);
        let images: Vec<Vec<u64>> = rows.iter().map(|r| layout.unpack_image(r, 0)).collect();
        let shared = layout.pack_images(&images);
        // Coverage map: pack all-ones rows, so covered slots read 1.
        let ones = layout.unpack_image(&vec![1u64; 2 * layout.lane_size], 0);
        let coverage = layout.pack_images(&vec![ones; images.len()]);
        for (i, (s, c)) in shared.iter().zip(&coverage).enumerate() {
            if *c == 0 {
                prop_assert_eq!(*s, 0, "uncovered slot {} carries data", i);
            }
        }
    }

    /// `scatter_masks` places each image's full-ring mask at that
    /// image's positions — identical to packing the per-image
    /// restrictions of those masks. Masks therefore stay independent
    /// per image even though the ciphertext is shared.
    #[test]
    fn scatter_masks_matches_packed_restrictions(
        lane_sel in 0u32..2,
        log_blocks in 0u32..3,
        log_groups in 1u32..6,
        lane_major_sel in 0u32..2,
        raw in 0u32..4096,
        seed in 0u64..1_000_000,
    ) {
        let layout = build_layout(lane_sel, log_blocks, log_groups, lane_major_sel, raw);
        let masks = build_rows(&layout, raw, seed);
        let scattered = layout.scatter_masks(&masks);
        let restricted: Vec<Vec<u64>> =
            masks.iter().map(|m| layout.unpack_image(m, 0)).collect();
        prop_assert_eq!(scattered, layout.pack_images(&restricted));
    }

    /// Capacity accounting: `capacity` images of `stride` positions
    /// each fit the position space, and one more would overflow it.
    #[test]
    fn capacity_fits_positions(
        lane_sel in 0u32..2,
        log_blocks in 0u32..3,
        log_groups in 1u32..6,
        lane_major_sel in 0u32..2,
        raw in 0u32..4096,
    ) {
        let layout = build_layout(lane_sel, log_blocks, log_groups, lane_major_sel, raw);
        prop_assert!(layout.capacity() >= 1);
        prop_assert!(layout.capacity() * layout.stride <= layout.positions());
        prop_assert!((layout.capacity() + 1) * layout.stride > layout.positions());
    }
}
