//! Bit-identity property tests for the `spot_he::arch` kernel dispatch.
//!
//! Every vectorized backend the host can run (AVX2 on x86_64, NEON on
//! aarch64) must produce *byte-for-byte* the same output as the scalar
//! reference for every kernel in the table — same lazy-reduction
//! ranges, same final canonical form. The tests compare backends by
//! calling the kernel tables directly (no global `force`), so they are
//! safe under the parallel test runner.
//!
//! Coverage knobs the ISSUE calls out explicitly:
//! - N = 4096 and N = 8192, every RNS prime of each level;
//! - a 62-bit prime (4p just under 2^64 — the tightest lazy window);
//! - boundary coefficients 0 / 1 / p-1 sprinkled into random rows;
//! - `reduce` fed raw u64 values up to `u64::MAX` (incl. 2p-1, 4p-1);
//! - lengths that are not a multiple of the vector width (remainder
//!   loops).

use proptest::prelude::*;
use spot_he::arch::{self, Kernels};
use spot_he::modulus::Modulus;
use spot_he::ntt::NttTables;
use spot_he::params::{EncryptionParams, ParamLevel};
use spot_he::primes::ntt_primes;
use std::sync::OnceLock;

/// Every backend this host can run, scalar first.
fn backends() -> Vec<&'static Kernels> {
    arch::available()
}

/// `(prime, tables)` for both test levels' full RNS bases plus one
/// 62-bit prime, built once — table construction dominates test time
/// otherwise.
fn all_tables() -> &'static Vec<NttTables> {
    static TABLES: OnceLock<Vec<NttTables>> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut tables = Vec::new();
        for level in [ParamLevel::N4096, ParamLevel::N8192] {
            let params = EncryptionParams::new(level);
            let degree = params.degree();
            for &p in params.coeff_moduli() {
                tables.push(NttTables::new(p, degree));
            }
        }
        // 4p sits right under 2^64: the tightest case for the [0, 4p)
        // lazy intermediates and the vector cond_sub contract.
        tables.push(NttTables::new(ntt_primes(62, 4096, 1)[0], 4096));
        tables
    })
}

/// Deterministic row in `[0, p)` with boundary values 0 / 1 / p-1
/// planted at seed-dependent positions.
fn row(p: u64, n: usize, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n as u64)
        .map(|i| {
            (i.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seed * 0x3C6E_F372))
                % p
        })
        .collect();
    for (k, &edge) in [0u64, 1, p - 1].iter().enumerate() {
        let idx = (seed as usize).wrapping_mul(31).wrapping_add(k * 7) % n;
        v[idx] = edge;
    }
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn ntt_forward_and_inverse_are_bit_identical_across_backends(seed in 0u64..1_000_000) {
        for tables in all_tables() {
            let p = tables.modulus().value();
            let orig = row(p, tables.degree(), seed);

            let mut fwd_scalar = orig.clone();
            tables.forward_with(arch::scalar_kernels(), &mut fwd_scalar);
            let mut inv_scalar = fwd_scalar.clone();
            tables.inverse_with(arch::scalar_kernels(), &mut inv_scalar);
            prop_assert_eq!(&inv_scalar, &orig, "scalar roundtrip broken at p={}", p);

            for k in backends() {
                let mut fwd = orig.clone();
                tables.forward_with(k, &mut fwd);
                prop_assert_eq!(&fwd, &fwd_scalar, "forward {} != scalar at p={}", k.name, p);
                let mut inv = fwd_scalar.clone();
                tables.inverse_with(k, &mut inv);
                prop_assert_eq!(&inv, &inv_scalar, "inverse {} != scalar at p={}", k.name, p);
            }
        }
    }

    #[test]
    fn pointwise_kernels_are_bit_identical_across_backends(
        seed in 0u64..1_000_000,
        // Deliberately not a multiple of any vector width most of the
        // time: exercises the remainder loops.
        n in 1usize..130,
    ) {
        for &p in &[
            ntt_primes(30, 2048, 1)[0],
            ntt_primes(50, 4096, 1)[0],
            ntt_primes(62, 4096, 1)[0],
        ] {
            let m = Modulus::new(p);
            let a = row(p, n, seed);
            let b = row(p, n, seed.wrapping_add(1));
            let c = row(p, n, seed.wrapping_add(2));
            let s = b[0];
            let ss = m.shoup(s);

            let scalar = arch::scalar_kernels();
            let mut mul_ref = a.clone();
            (scalar.pointwise_mul)(&m, &mut mul_ref, &b);
            let mut madd_ref = c.clone();
            (scalar.pointwise_add_mul)(&m, &mut madd_ref, &a, &b);
            let mut add_ref = a.clone();
            (scalar.pointwise_add)(&m, &mut add_ref, &b);
            let mut sub_ref = a.clone();
            (scalar.pointwise_sub)(&m, &mut sub_ref, &b);
            let mut smul_ref = a.clone();
            (scalar.mul_scalar)(&m, &mut smul_ref, s, ss);

            for k in backends() {
                let mut mul = a.clone();
                (k.pointwise_mul)(&m, &mut mul, &b);
                prop_assert_eq!(&mul, &mul_ref, "pointwise_mul {} at p={}", k.name, p);
                let mut madd = c.clone();
                (k.pointwise_add_mul)(&m, &mut madd, &a, &b);
                prop_assert_eq!(&madd, &madd_ref, "pointwise_add_mul {} at p={}", k.name, p);
                let mut add = a.clone();
                (k.pointwise_add)(&m, &mut add, &b);
                prop_assert_eq!(&add, &add_ref, "pointwise_add {} at p={}", k.name, p);
                let mut sub = a.clone();
                (k.pointwise_sub)(&m, &mut sub, &b);
                prop_assert_eq!(&sub, &sub_ref, "pointwise_sub {} at p={}", k.name, p);
                let mut smul = a.clone();
                (k.mul_scalar)(&m, &mut smul, s, ss);
                prop_assert_eq!(&smul, &smul_ref, "mul_scalar {} at p={}", k.name, p);
            }
        }
    }

    #[test]
    fn reduce_kernel_is_bit_identical_on_raw_u64_inputs(
        seed in 0u64..1_000_000,
        n in 1usize..130,
    ) {
        for &p in &[ntt_primes(30, 2048, 1)[0], ntt_primes(62, 4096, 1)[0]] {
            let m = Modulus::new(p);
            // Raw 64-bit inputs: the key-switch digit lift reduces
            // residues from a *larger* modulus, so feed the whole range
            // plus the lazy-window edges 2p-1 and 4p-1.
            let mut src: Vec<u64> = (0..n as u64)
                .map(|i| i.wrapping_mul(0xD134_2543_DE82_EF95).wrapping_add(seed))
                .collect();
            for (k, edge) in [0u64, p - 1, 2 * p - 1, (2 * p - 1).saturating_mul(2), u64::MAX]
                .into_iter()
                .enumerate()
            {
                let idx = (seed as usize).wrapping_mul(17).wrapping_add(k * 5) % n;
                src[idx] = edge;
            }

            let mut dst_ref = vec![0u64; n];
            (arch::scalar_kernels().reduce)(&m, &mut dst_ref, &src);
            for (i, &x) in dst_ref.iter().enumerate() {
                prop_assert_eq!(x, src[i] % p, "scalar reduce wrong at p={}", p);
            }
            for k in backends() {
                let mut dst = vec![0u64; n];
                (k.reduce)(&m, &mut dst, &src);
                prop_assert_eq!(&dst, &dst_ref, "reduce {} at p={}", k.name, p);
            }
        }
    }
}

/// On x86_64 the AVX2 backend must actually be in the comparison set on
/// any machine new enough to run CI — otherwise the bit-identity tests
/// above silently compare scalar against nothing.
#[test]
fn vector_backend_is_exercised_where_expected() {
    let names: Vec<&str> = backends().iter().map(|k| k.name).collect();
    assert!(names.contains(&"scalar"));
    #[cfg(target_arch = "x86_64")]
    if is_x86_feature_detected!("avx2") {
        assert!(names.contains(&"avx2"), "avx2 detected but not listed");
    }
    #[cfg(target_arch = "aarch64")]
    assert!(names.contains(&"neon"), "aarch64 always has NEON");
}
