//! Plain-text table formatting for the benchmark binaries.

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats seconds with 3 decimal places and an `s` suffix.
pub fn secs(v: f64) -> String {
    format!("{v:.3}s")
}

/// Formats a speedup factor like the paper (`2.35x`).
pub fn speedup(base: f64, ours: f64) -> String {
    format!("{:.2}x", base / ours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(&["xx".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a   bbbb"));
        assert!(s.contains("xx  y"));
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(1.2345), "1.234s");
        assert_eq!(speedup(10.0, 4.0), "2.50x");
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
