//! Plain-text table formatting for the benchmark binaries.

/// A simple fixed-width text table builder.
#[derive(Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// One scheme's measured streaming-pipeline timing, as produced by the
/// real streaming runtime in `spot-core::stream` (this crate only
/// renders it — core depends on pipeline, not the reverse).
///
/// All `*_s` fields are wall-clock seconds except the two server
/// fields, which are **thread-seconds** summed across workers (on a
/// single-thread server the two notions coincide, which is how the
/// paper-style stall comparison is read).
#[derive(Debug, Clone, PartialEq)]
pub struct StallRow {
    /// Scheme name (`SPOT`, `Channel-wise`, `Cheetah`).
    pub scheme: String,
    /// End-to-end wall-clock time of the streamed layer.
    pub wall_s: f64,
    /// Client active time (packing + encryption + assembly).
    pub client_s: f64,
    /// Client time blocked on channel backpressure (out of memory for
    /// another in-flight ciphertext).
    pub client_blocked_s: f64,
    /// Server thread-seconds spent convolving.
    pub server_busy_s: f64,
    /// Server thread-seconds idle, waiting for ciphertexts to arrive —
    /// the paper's "linear computation stall".
    pub server_idle_s: f64,
    /// Input ciphertexts streamed client → server.
    pub input_cts: usize,
    /// Output ciphertexts returned server → client.
    pub output_cts: usize,
    /// Bounded-channel capacity (the client's ciphertext budget).
    pub channel_capacity: usize,
    /// Server worker threads.
    pub server_threads: usize,
}

/// Renders measured stall accounting for a set of schemes as a table
/// (the measured counterpart of the simulator's Table I/II stall
/// columns).
pub fn stall_table(title: impl Into<String>, rows: &[StallRow]) -> String {
    let mut t = Table::new(
        title,
        &[
            "scheme",
            "wall",
            "client",
            "client blocked",
            "server busy",
            "server idle",
            "in cts",
            "out cts",
            "chan cap",
            "threads",
        ],
    );
    for r in rows {
        t.row(&[
            r.scheme.clone(),
            secs(r.wall_s),
            secs(r.client_s),
            secs(r.client_blocked_s),
            secs(r.server_busy_s),
            secs(r.server_idle_s),
            r.input_cts.to_string(),
            r.output_cts.to_string(),
            r.channel_capacity.to_string(),
            r.server_threads.to_string(),
        ]);
    }
    t.render()
}

/// One direction of a session's wire traffic: real framed byte and
/// message counts from a transport, the wall-clock the transfer
/// actually took (zero when it was not measured separately), and what
/// a link model predicts for the same bytes.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferRow {
    /// Direction label (`client -> server`, `server -> client`).
    pub direction: String,
    /// Framed wire bytes (headers + payloads).
    pub bytes: u64,
    /// Protocol messages (one framed message per wire frame).
    pub messages: u64,
    /// Measured transfer wall-clock in seconds (0 if unmeasured).
    pub measured_s: f64,
    /// Time the sender spent blocked in `send` on backpressure, in
    /// seconds (0 for the receiving direction or an unbounded pipe).
    pub send_blocked_s: f64,
    /// Link-model-predicted transfer time for the same byte count.
    pub modeled_s: f64,
}

/// Renders measured-vs-modeled transfer accounting for a session: the
/// real frames a transport moved against what a bandwidth/latency link
/// model predicts for those bytes. The caller computes `modeled_s` so
/// this crate stays renderer-only.
pub fn transfer_table(title: impl Into<String>, rows: &[TransferRow]) -> String {
    let mut t = Table::new(
        title,
        &[
            "direction",
            "bytes",
            "frames",
            "measured",
            "send blocked",
            "modeled",
        ],
    );
    let opt = |v: f64| if v > 0.0 { secs(v) } else { "-".into() };
    for r in rows {
        t.row(&[
            r.direction.clone(),
            r.bytes.to_string(),
            r.messages.to_string(),
            opt(r.measured_s),
            opt(r.send_blocked_s),
            secs(r.modeled_s),
        ]);
    }
    t.render()
}

/// Formats seconds with 3 decimal places and an `s` suffix.
pub fn secs(v: f64) -> String {
    format!("{v:.3}s")
}

/// Formats a speedup factor like the paper (`2.35x`).
pub fn speedup(base: f64, ours: f64) -> String {
    format!("{:.2}x", base / ours)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["a", "bbbb"]);
        t.row(&["xx".into(), "y".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("a   bbbb"));
        assert!(s.contains("xx  y"));
    }

    #[test]
    fn helpers() {
        assert_eq!(secs(1.2345), "1.234s");
        assert_eq!(speedup(10.0, 4.0), "2.50x");
    }

    #[test]
    fn transfer_table_surfaces_send_blocked_and_frames() {
        let s = transfer_table(
            "T",
            &[TransferRow {
                direction: "client -> server".into(),
                bytes: 1024,
                messages: 7,
                measured_s: 0.0,
                send_blocked_s: 0.25,
                modeled_s: 0.5,
            }],
        );
        assert!(s.contains("frames"));
        assert!(s.contains("send blocked"));
        assert!(s.contains("0.250s"));
        assert!(s.contains('7'));
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a"]);
        t.row(&["1".into(), "2".into()]);
    }
}
