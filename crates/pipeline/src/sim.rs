//! Discrete-event simulation of one secure convolution layer on a
//! memory-constrained client.
//!
//! The simulator schedules the encrypt → upload → server-compute →
//! download → decrypt pipeline of a [`ConvPlan`] under:
//!
//! * the client's ciphertext capacity (a slot is held from the start of
//!   encryption until upload completes, and from the start of download
//!   until decryption completes — the paper's Fig. 3 memory constraint);
//! * a finite server thread pool;
//! * serialized up/down links.
//!
//! With channel-wise packing ([`OutputDependency::AllInputs`]) the server
//! computes the convolution only once **all** input ciphertexts have
//! arrived (CrypTFlow2's batched convolution API), so the sequential
//! encryption of a tiny client leaves the server idle — the paper's
//! *linear computation stall*. SPOT's structure patching
//! ([`OutputDependency::PerInput`]) completes the convolution per input
//! ciphertext and streams results back immediately, overlapping server
//! compute, transfers, and the client's next encryption.

use crate::device::{DeviceProfile, HeCostTable};
use crate::plan::{ConvPlan, OutputDependency};
use spot_he::evaluator::OpCounts;
use spot_proto::channel::LinkModel;
use spot_proto::cost::OtCostModel;
use std::collections::BinaryHeap;

/// Simulation configuration: who runs where, over what link.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The client device.
    pub client: DeviceProfile,
    /// The server device.
    pub server: DeviceProfile,
    /// HE cost table (reference-core seconds).
    pub costs: HeCostTable,
    /// Network link model.
    pub link: LinkModel,
}

impl SimConfig {
    /// Standard configuration: the given client vs the EPYC server, over
    /// the client's own link (LAN for desktops, WLAN for tiny clients).
    pub fn with_client(client: DeviceProfile) -> Self {
        let link = client.link;
        Self {
            client,
            server: DeviceProfile::server_epyc(),
            costs: HeCostTable::reference(),
            link,
        }
    }
}

/// Timing breakdown of one simulated layer (the Table III decomposition).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LayerTiming {
    /// End-to-end wall-clock seconds.
    pub total_s: f64,
    /// Client HE CPU seconds (encrypt + decrypt + share assembly).
    pub client_he_s: f64,
    /// Server HE CPU seconds (all threads summed).
    pub server_he_s: f64,
    /// Non-linear (OT ReLU) seconds on the critical path.
    pub relu_s: f64,
    /// Communication seconds (links busy time).
    pub comm_s: f64,
    /// Server idle seconds between its first and last HE job (the stall).
    pub stall_s: f64,
    /// Upstream bytes.
    pub upstream_bytes: u64,
    /// Downstream bytes.
    pub downstream_bytes: u64,
}

impl LayerTiming {
    /// Adds another layer's timing (sequential composition).
    pub fn accumulate(&mut self, other: &LayerTiming) {
        self.total_s += other.total_s;
        self.client_he_s += other.client_he_s;
        self.server_he_s += other.server_he_s;
        self.relu_s += other.relu_s;
        self.comm_s += other.comm_s;
        self.stall_s += other.stall_s;
        self.upstream_bytes += other.upstream_bytes;
        self.downstream_bytes += other.downstream_bytes;
    }
}

/// A single scheduled interval, for timeline exports (Fig. 6).
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineEvent {
    /// Which lane the event belongs to (`client`, `server`, `link-up`,
    /// `link-down`).
    pub lane: &'static str,
    /// Event label, e.g. `enc[3]`.
    pub label: String,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// Result of simulating one layer: the timing summary plus the full
/// event timeline.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Timing breakdown.
    pub timing: LayerTiming,
    /// Every scheduled interval (for Gantt-style inspection).
    pub timeline: Vec<TimelineEvent>,
}

fn ops_seconds(ops: &OpCounts, costs: &crate::device::OpCosts) -> f64 {
    ops.add as f64 * costs.add
        + ops.mult_plain as f64 * costs.mult_plain
        + ops.rotate as f64 * costs.rotate
        + ops.encrypt as f64 * costs.encrypt
        + ops.decrypt as f64 * costs.decrypt
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Res {
    ClientCpu,
    Server,
    LinkUp,
    LinkDown,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotAction {
    None,
    /// Acquire a client memory slot at start (released by a later job).
    Acquire,
    /// Release the slot chain this job belongs to at completion.
    Release,
}

#[derive(Debug, Clone)]
struct Job {
    resource: Res,
    duration: f64,
    deps: Vec<usize>,
    slot: SlotAction,
    lane: &'static str,
    label: String,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Completion {
    time: f64,
    job: usize,
}

impl Eq for Completion {}
impl Ord for Completion {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // min-heap by time (reverse), tie-break by job id
        other
            .time
            .partial_cmp(&self.time)
            .unwrap()
            .then(other.job.cmp(&self.job))
    }
}
impl PartialOrd for Completion {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Greedy event-driven list scheduler over the job graph.
struct Engine {
    jobs: Vec<Job>,
    start: Vec<f64>,
    end: Vec<f64>,
    done: Vec<bool>,
    started: Vec<bool>,
    free: [usize; 4],
    free_slots: usize,
}

impl Engine {
    fn new(jobs: Vec<Job>, client_threads: usize, server_threads: usize, slots: usize) -> Self {
        let n = jobs.len();
        Self {
            jobs,
            start: vec![0.0; n],
            end: vec![0.0; n],
            done: vec![false; n],
            started: vec![false; n],
            free: [client_threads.max(1), server_threads.max(1), 1, 1],
            free_slots: slots.max(1),
        }
    }

    fn res_idx(r: Res) -> usize {
        match r {
            Res::ClientCpu => 0,
            Res::Server => 1,
            Res::LinkUp => 2,
            Res::LinkDown => 3,
        }
    }

    fn run(&mut self) -> f64 {
        let mut heap: BinaryHeap<Completion> = BinaryHeap::new();
        let mut now = 0.0f64;
        let mut remaining = self.jobs.len();
        loop {
            // Start every startable job at `now`, in index order.
            let mut progress = true;
            while progress {
                progress = false;
                for j in 0..self.jobs.len() {
                    if self.started[j] {
                        continue;
                    }
                    let job = &self.jobs[j];
                    if !job.deps.iter().all(|&d| self.done[d]) {
                        continue;
                    }
                    let ri = Self::res_idx(job.resource);
                    if self.free[ri] == 0 {
                        continue;
                    }
                    if job.slot == SlotAction::Acquire && self.free_slots == 0 {
                        continue;
                    }
                    // start it
                    self.free[ri] -= 1;
                    if job.slot == SlotAction::Acquire {
                        self.free_slots -= 1;
                    }
                    self.started[j] = true;
                    self.start[j] = now;
                    self.end[j] = now + job.duration;
                    heap.push(Completion {
                        time: self.end[j],
                        job: j,
                    });
                    progress = true;
                }
            }
            // Advance to the next completion.
            match heap.pop() {
                None => break,
                Some(c) => {
                    now = c.time;
                    // complete this and any simultaneous completions
                    let mut batch = vec![c];
                    while let Some(&next) = heap.peek() {
                        if next.time <= now + 1e-15 {
                            batch.push(heap.pop().unwrap());
                        } else {
                            break;
                        }
                    }
                    for c in batch {
                        let j = c.job;
                        self.done[j] = true;
                        remaining -= 1;
                        let ri = Self::res_idx(self.jobs[j].resource);
                        self.free[ri] += 1;
                        if self.jobs[j].slot == SlotAction::Release {
                            self.free_slots += 1;
                        }
                    }
                }
            }
        }
        assert_eq!(remaining, 0, "scheduler deadlock: jobs left unscheduled");
        now
    }
}

/// Simulates one convolution layer (plus its trailing ReLU, if any).
#[allow(clippy::needless_range_loop)]
pub fn simulate_conv(plan: &ConvPlan, cfg: &SimConfig) -> SimResult {
    let costs = cfg.costs.at(plan.level);
    let enc_t = cfg.client.scale(costs.encrypt);
    let dec_t = cfg.client.scale(costs.decrypt);
    let up_t = cfg.link.transfer_time(plan.ciphertext_bytes);
    let per_ct_t = cfg.server.scale(ops_seconds(&plan.per_ct_ops, &costs));
    let fin_total = cfg.server.scale(ops_seconds(&plan.finalize_ops, &costs));
    let asm_total = cfg.client.scale(plan.assembly_elements as f64 * 2e-9);

    let capacity = cfg.client.ciphertext_capacity(plan.ciphertext_bytes);

    let down_bytes_per_ct = if plan.output_cts > 0 {
        plan.ciphertext_bytes as u64 + plan.extra_downstream_bytes / plan.output_cts as u64
    } else {
        0
    };
    let down_t = cfg.link.transfer_time(down_bytes_per_ct as usize);
    let dec_one = dec_t + asm_total / plan.output_cts.max(1) as f64;

    // Build the job graph.
    let mut jobs: Vec<Job> = Vec::new();
    let mut srv_ids = Vec::with_capacity(plan.input_cts);
    let mut up_ids = Vec::with_capacity(plan.input_cts);
    for i in 0..plan.input_cts {
        let enc = jobs.len();
        jobs.push(Job {
            resource: Res::ClientCpu,
            duration: enc_t,
            deps: vec![],
            slot: SlotAction::Acquire,
            lane: "client",
            label: format!("enc[{i}]"),
        });
        let up = jobs.len();
        jobs.push(Job {
            resource: Res::LinkUp,
            duration: up_t,
            deps: vec![enc],
            slot: SlotAction::Release,
            lane: "link-up",
            label: format!("up[{i}]"),
        });
        up_ids.push(up);
    }
    // Server work: per-input for SPOT; after the last upload for
    // barrier-style schemes (CrypTFlow2/Cheetah batched convolution).
    for i in 0..plan.input_cts {
        let deps = match plan.dependency {
            OutputDependency::PerInput => vec![up_ids[i]],
            OutputDependency::AllInputs => up_ids.clone(),
        };
        let srv = jobs.len();
        jobs.push(Job {
            resource: Res::Server,
            duration: per_ct_t,
            deps,
            slot: SlotAction::None,
            lane: "server",
            label: format!("conv[{i}]"),
        });
        srv_ids.push(srv);
    }
    // Finalization (cross-ciphertext additions), parallelized over
    // output ciphertexts.
    let mut fin_ids = Vec::new();
    if fin_total > 0.0 {
        let fin_width = cfg.server.threads.min(plan.output_cts.max(1));
        for f in 0..fin_width {
            let fin = jobs.len();
            jobs.push(Job {
                resource: Res::Server,
                duration: fin_total / fin_width as f64,
                deps: srv_ids.clone(),
                slot: SlotAction::None,
                lane: "server",
                label: format!("finalize[{f}]"),
            });
            fin_ids.push(fin);
        }
    }
    // Downloads + decryptions.
    let outs_per_input = |i: usize| -> usize {
        let base = plan.output_cts / plan.input_cts.max(1);
        let extra = plan.output_cts % plan.input_cts.max(1);
        base + usize::from(i < extra)
    };
    let mut dec_ids = Vec::new();
    match plan.dependency {
        OutputDependency::PerInput => {
            for i in 0..plan.input_cts {
                for j in 0..outs_per_input(i) {
                    let mut deps = vec![srv_ids[i]];
                    deps.extend(fin_ids.iter().copied());
                    let down = jobs.len();
                    jobs.push(Job {
                        resource: Res::LinkDown,
                        duration: down_t,
                        deps,
                        slot: SlotAction::Acquire,
                        lane: "link-down",
                        label: format!("down[{i}.{j}]"),
                    });
                    let dec = jobs.len();
                    jobs.push(Job {
                        resource: Res::ClientCpu,
                        duration: dec_one,
                        deps: vec![down],
                        slot: SlotAction::Release,
                        lane: "client",
                        label: format!("dec[{i}.{j}]"),
                    });
                    dec_ids.push(dec);
                }
            }
        }
        OutputDependency::AllInputs => {
            let deps_base: Vec<usize> = if fin_ids.is_empty() {
                srv_ids.clone()
            } else {
                fin_ids.clone()
            };
            for j in 0..plan.output_cts {
                let down = jobs.len();
                jobs.push(Job {
                    resource: Res::LinkDown,
                    duration: down_t,
                    deps: deps_base.clone(),
                    slot: SlotAction::Acquire,
                    lane: "link-down",
                    label: format!("down[{j}]"),
                });
                let dec = jobs.len();
                jobs.push(Job {
                    resource: Res::ClientCpu,
                    duration: dec_one,
                    deps: vec![down],
                    slot: SlotAction::Release,
                    lane: "client",
                    label: format!("dec[{j}]"),
                });
                dec_ids.push(dec);
            }
        }
    }

    let mut engine = Engine::new(jobs, cfg.client.threads, cfg.server.threads, capacity);
    let mut makespan = engine.run();

    // Extra client-side processing (e.g. Cheetah LWE handling).
    if plan.client_extra_s > 0.0 {
        makespan += cfg.client.scale(plan.client_extra_s);
    }

    // Trailing ReLU on the shared output (starts after the last share
    // piece is decrypted).
    let mut relu_s = 0.0;
    if plan.relu_elements > 0 {
        let model = OtCostModel::relu(spot_proto::cost::field_bits(1 << 20));
        let cpu = model.cpu_seconds(plan.relu_elements);
        let both = cfg.client.scale(cpu).max(cfg.server.scale(cpu));
        let comm = cfg
            .link
            .transfer_time(model.comm_bytes(plan.relu_elements) as usize);
        relu_s = both + comm;
        makespan += relu_s;
    }

    // Collect timeline + metrics.
    let mut timeline = Vec::with_capacity(engine.jobs.len());
    let mut client_busy = 0.0;
    let mut server_busy = 0.0;
    let mut comm_busy = 0.0;
    let mut server_intervals = Vec::new();
    for (j, job) in engine.jobs.iter().enumerate() {
        timeline.push(TimelineEvent {
            lane: job.lane,
            label: job.label.clone(),
            start: engine.start[j],
            end: engine.end[j],
        });
        let dur = engine.end[j] - engine.start[j];
        match job.resource {
            Res::ClientCpu => client_busy += dur,
            Res::Server => {
                server_busy += dur;
                server_intervals.push((engine.start[j], engine.end[j]));
            }
            Res::LinkUp | Res::LinkDown => comm_busy += dur,
        }
    }
    if relu_s > 0.0 {
        timeline.push(TimelineEvent {
            lane: "client",
            label: "relu".to_string(),
            start: makespan - relu_s,
            end: makespan,
        });
    }

    // Server stall: idle time between first job start and last job end.
    server_intervals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    let stall = if server_intervals.is_empty() {
        0.0
    } else {
        let span_start = server_intervals[0].0;
        let span_end = server_intervals
            .iter()
            .map(|&(_, e)| e)
            .fold(f64::MIN, f64::max);
        let mut busy = 0.0;
        let mut cur = server_intervals[0];
        for &(s, e) in &server_intervals[1..] {
            if s > cur.1 {
                busy += cur.1 - cur.0;
                cur = (s, e);
            } else {
                cur.1 = cur.1.max(e);
            }
        }
        busy += cur.1 - cur.0;
        // Idle while waiting for uploads counts from time 0 (the server
        // is committed to this layer as soon as the protocol starts).
        (span_end - span_start) - busy + span_start
    };

    SimResult {
        timing: LayerTiming {
            total_s: makespan,
            client_he_s: client_busy,
            server_he_s: server_busy,
            relu_s,
            comm_s: comm_busy,
            stall_s: stall.max(0.0),
            upstream_bytes: plan.upstream_bytes(),
            downstream_bytes: plan.downstream_bytes(),
        },
        timeline,
    }
}

/// Simulates a sequence of layers executed back to back (a block or a
/// whole network), summing the breakdowns.
pub fn simulate_layers(plans: &[ConvPlan], cfg: &SimConfig) -> LayerTiming {
    let mut acc = LayerTiming::default();
    for p in plans {
        acc.accumulate(&simulate_conv(p, cfg).timing);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use spot_he::params::ParamLevel;

    fn mk_plan(dep: OutputDependency, input_cts: usize) -> ConvPlan {
        ConvPlan {
            scheme: "test",
            level: ParamLevel::N8192,
            input_cts,
            output_cts: input_cts,
            per_ct_ops: OpCounts {
                add: 50,
                mult_plain: 100,
                rotate: 10,
                encrypt: 0,
                decrypt: 0,
            },
            finalize_ops: if dep == OutputDependency::AllInputs {
                OpCounts {
                    add: 200,
                    mult_plain: 0,
                    rotate: 0,
                    encrypt: 0,
                    decrypt: 0,
                }
            } else {
                OpCounts::default()
            },
            dependency: dep,
            extra_downstream_bytes: 0,
            assembly_elements: 0,
            client_extra_s: 0.0,
            relu_elements: 10_000,
            ciphertext_bytes: 394_865,
            useful_input_slots: 8192,
            useful_output_slots: 8192,
        }
    }

    fn tiny_client_cfg() -> SimConfig {
        SimConfig::with_client(DeviceProfile::iot_k27())
    }

    #[test]
    fn per_input_streaming_beats_barrier_on_tiny_client() {
        let cfg = tiny_client_cfg();
        let barrier = simulate_conv(&mk_plan(OutputDependency::AllInputs, 8), &cfg);
        let stream = simulate_conv(&mk_plan(OutputDependency::PerInput, 8), &cfg);
        assert!(
            stream.timing.total_s < barrier.timing.total_s,
            "stream {} vs barrier {}",
            stream.timing.total_s,
            barrier.timing.total_s
        );
        assert!(barrier.timing.stall_s > stream.timing.stall_s);
    }

    #[test]
    fn desktop_client_pipelines_better() {
        let tiny = simulate_conv(&mk_plan(OutputDependency::AllInputs, 8), &tiny_client_cfg());
        let desktop = simulate_conv(
            &mk_plan(OutputDependency::AllInputs, 8),
            &SimConfig::with_client(DeviceProfile::desktop_client()),
        );
        assert!(desktop.timing.total_s < tiny.timing.total_s);
    }

    #[test]
    fn timeline_events_are_ordered_and_positive() {
        let cfg = tiny_client_cfg();
        let res = simulate_conv(&mk_plan(OutputDependency::PerInput, 4), &cfg);
        assert!(!res.timeline.is_empty());
        for ev in &res.timeline {
            assert!(ev.end >= ev.start, "{ev:?}");
            assert!(ev.start >= 0.0);
        }
        // uploads are serialized on the single uplink
        let ups: Vec<&TimelineEvent> = res
            .timeline
            .iter()
            .filter(|e| e.lane == "link-up")
            .collect();
        for pair in ups.windows(2) {
            assert!(pair[1].start >= pair[0].end - 1e-12);
        }
    }

    #[test]
    fn relu_appears_in_totals() {
        let cfg = tiny_client_cfg();
        let mut plan = mk_plan(OutputDependency::PerInput, 2);
        plan.relu_elements = 0;
        let without = simulate_conv(&plan, &cfg).timing;
        plan.relu_elements = 100_000;
        let with = simulate_conv(&plan, &cfg).timing;
        assert!(with.relu_s > 0.0);
        assert!(with.total_s > without.total_s);
    }

    #[test]
    fn accumulate_sums() {
        let cfg = tiny_client_cfg();
        let p = mk_plan(OutputDependency::PerInput, 2);
        let one = simulate_conv(&p, &cfg).timing;
        let both = simulate_layers(&[p.clone(), p], &cfg);
        assert!((both.total_s - 2.0 * one.total_s).abs() < 1e-9);
        assert_eq!(both.upstream_bytes, 2 * one.upstream_bytes);
    }

    #[test]
    fn more_input_cts_increase_stall_under_barrier() {
        let cfg = tiny_client_cfg();
        let few = simulate_conv(&mk_plan(OutputDependency::AllInputs, 2), &cfg).timing;
        let many = simulate_conv(&mk_plan(OutputDependency::AllInputs, 16), &cfg).timing;
        assert!(many.stall_s > few.stall_s);
    }

    #[test]
    fn single_ciphertext_layer_works() {
        let cfg = tiny_client_cfg();
        let res = simulate_conv(&mk_plan(OutputDependency::PerInput, 1), &cfg);
        assert!(res.timing.total_s > 0.0);
        assert_eq!(res.timing.upstream_bytes, 394_865);
    }

    #[test]
    fn smaller_params_are_faster_end_to_end() {
        let cfg = tiny_client_cfg();
        let mut small = mk_plan(OutputDependency::PerInput, 8);
        small.level = ParamLevel::N4096;
        small.ciphertext_bytes = 131_697;
        let big = mk_plan(OutputDependency::PerInput, 8);
        let ts = simulate_conv(&small, &cfg).timing;
        let tb = simulate_conv(&big, &cfg).timing;
        assert!(ts.total_s < tb.total_s);
    }
}
