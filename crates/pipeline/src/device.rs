//! Device profiles and HE operation cost tables.
//!
//! **Substitution note (DESIGN.md §3):** the paper measures on a physical
//! Nexus 6 (Snapdragon 805), a Kinetis K27 Cortex-M4, and an AMD EPYC
//! 7413 server. We replace the testbed with calibrated cost tables: the
//! per-operation costs of our own BFV implementation at each parameter
//! level (either the embedded reference values below, aligned with the
//! paper's Table IV, or measured live via [`HeCostTable::calibrate`]),
//! scaled by per-device CPU factors derived from the paper's own
//! cross-device measurements.

use spot_he::params::ParamLevel;
use spot_proto::channel::LinkModel;

/// Per-operation HE costs (seconds on the reference server core).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCosts {
    /// Public-key encryption of one ciphertext.
    pub encrypt: f64,
    /// Decryption of one ciphertext.
    pub decrypt: f64,
    /// Ciphertext–plaintext SIMD multiplication.
    pub mult_plain: f64,
    /// Ciphertext addition.
    pub add: f64,
    /// Slot rotation (Galois automorphism + key switch).
    pub rotate: f64,
}

/// HE operation costs for every parameter level.
#[derive(Debug, Clone, PartialEq)]
pub struct HeCostTable {
    costs: [OpCosts; 4],
}

impl HeCostTable {
    /// The embedded reference table. `mult_plain` values are the paper's
    /// Table IV SEAL measurements (D = 4096/8192/16384: 0.14/0.7/1.5 ms);
    /// the remaining operations follow SEAL's measured ratios to Mult.
    pub fn reference() -> Self {
        Self {
            costs: [
                // N2048 (extrapolated; no rotation support)
                OpCosts {
                    encrypt: 0.0005,
                    decrypt: 0.0003,
                    mult_plain: 0.00004,
                    add: 0.000006,
                    rotate: f64::INFINITY,
                },
                // N4096
                OpCosts {
                    encrypt: 0.0015,
                    decrypt: 0.0008,
                    mult_plain: 0.00014,
                    add: 0.00002,
                    rotate: 0.0005,
                },
                // N8192
                OpCosts {
                    encrypt: 0.0050,
                    decrypt: 0.0028,
                    mult_plain: 0.0007,
                    add: 0.0001,
                    rotate: 0.0025,
                },
                // N16384
                OpCosts {
                    encrypt: 0.0160,
                    decrypt: 0.0090,
                    mult_plain: 0.0015,
                    add: 0.00032,
                    rotate: 0.0110,
                },
            ],
        }
    }

    /// Builds a table from explicit per-level costs (smallest level
    /// first). Used by live calibration in `spot-bench`.
    pub fn from_costs(costs: [OpCosts; 4]) -> Self {
        Self { costs }
    }

    /// Costs at a parameter level.
    pub fn at(&self, level: ParamLevel) -> OpCosts {
        let idx = match level {
            ParamLevel::N2048 => 0,
            ParamLevel::N4096 => 1,
            ParamLevel::N8192 => 2,
            ParamLevel::N16384 => 3,
        };
        self.costs[idx]
    }
}

impl Default for HeCostTable {
    fn default() -> Self {
        Self::reference()
    }
}

/// A device profile: a CPU scale factor relative to the reference server
/// core, a memory budget, and a thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    /// Display name.
    pub name: &'static str,
    /// CPU slowdown factor vs the reference server core (1.0 = server).
    pub cpu_scale: f64,
    /// Memory available for HE working state, bytes.
    pub mem_budget_bytes: usize,
    /// Memory permanently consumed by resident key material and runtime
    /// overhead, bytes (the paper: keys ≈ 80.23 MB + ~10 MB overhead on
    /// Nexus 6).
    pub resident_bytes: usize,
    /// Usable worker threads.
    pub threads: usize,
    /// The network link this device reaches the server over.
    pub link: LinkModel,
}

impl DeviceProfile {
    /// The evaluation server: AMD EPYC 7413, 2.65 GHz, 64 GB — the
    /// reference core, many threads.
    pub fn server_epyc() -> Self {
        Self {
            name: "EPYC server",
            cpu_scale: 1.0,
            mem_budget_bytes: 64 << 30,
            resident_bytes: 0,
            threads: 16,
            link: LinkModel::lan(),
        }
    }

    /// A desktop client: comparable clock to the server, abundant memory.
    pub fn desktop_client() -> Self {
        Self {
            name: "Desktop client",
            cpu_scale: 1.1,
            mem_budget_bytes: 16 << 30,
            resident_bytes: 256 << 20,
            threads: 8,
            link: LinkModel::lan(),
        }
    }

    /// Google Nexus 6 (Snapdragon 805, 2.7 GHz): ~100 MB per-app budget,
    /// ≈90 MB of it held by keys + runtime.
    pub fn nexus6() -> Self {
        Self {
            name: "Nexus 6",
            // Derived from the paper's Table III: ~0.34 s client-side
            // encryption per D=16384 ciphertext on the Snapdragon 805 vs
            // ~16 ms on the EPYC reference core (mobile HE runtimes lack
            // AVX/NTT tuning; the gap far exceeds the clock ratio).
            cpu_scale: 13.0,
            mem_budget_bytes: 100 << 20,
            resident_bytes: 90 << 20,
            threads: 2,
            link: LinkModel::wlan(),
        }
    }

    /// Kinetis K27 microcontroller (Cortex-M4, 1 MB SRAM, keys streamed
    /// from flash/SD): holds at most one ciphertext of working state.
    pub fn iot_k27() -> Self {
        Self {
            name: "IoT controller",
            cpu_scale: 15.0,
            mem_budget_bytes: 1 << 20,
            resident_bytes: 512 << 10,
            threads: 1,
            link: LinkModel::wlan(),
        }
    }

    /// Maximum ciphertexts of the given serialized size this device can
    /// hold simultaneously (at least 1 — streaming a single ciphertext
    /// through SRAM is always assumed possible).
    pub fn ciphertext_capacity(&self, ciphertext_bytes: usize) -> usize {
        let free = self.mem_budget_bytes.saturating_sub(self.resident_bytes);
        (free / ciphertext_bytes.max(1)).max(1)
    }

    /// Scales a reference-core duration to this device.
    pub fn scale(&self, reference_seconds: f64) -> f64 {
        reference_seconds * self.cpu_scale
    }

    /// Returns a copy with an overridden ciphertext capacity, expressed
    /// by adjusting the memory budget (used by Table I's 1/2/3-ciphertext
    /// scenarios).
    pub fn with_capacity(&self, capacity: usize, ciphertext_bytes: usize) -> Self {
        let mut d = self.clone();
        d.resident_bytes = 0;
        d.mem_budget_bytes = capacity * ciphertext_bytes;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_matches_table4_mult() {
        let t = HeCostTable::reference();
        assert_eq!(t.at(ParamLevel::N4096).mult_plain, 0.00014);
        assert_eq!(t.at(ParamLevel::N8192).mult_plain, 0.0007);
        assert_eq!(t.at(ParamLevel::N16384).mult_plain, 0.0015);
    }

    #[test]
    fn smaller_levels_are_cheaper() {
        let t = HeCostTable::reference();
        for pair in ParamLevel::ALL.windows(2) {
            let small = t.at(pair[0]);
            let big = t.at(pair[1]);
            assert!(small.encrypt < big.encrypt);
            assert!(small.mult_plain < big.mult_plain);
            assert!(small.add < big.add);
        }
    }

    #[test]
    fn nexus_capacity_is_tiny() {
        let d = DeviceProfile::nexus6();
        // ~10 MB free; at N=16384 (~790 KB/ct) that is a handful of cts.
        let cap = d.ciphertext_capacity(789_617);
        assert!((1..=16).contains(&cap), "cap = {cap}");
        // Desktop fits thousands.
        assert!(DeviceProfile::desktop_client().ciphertext_capacity(789_617) > 1000);
    }

    #[test]
    fn iot_capacity_is_one_for_large_cts() {
        let d = DeviceProfile::iot_k27();
        assert_eq!(d.ciphertext_capacity(789_617), 1);
        assert_eq!(d.ciphertext_capacity(4 << 20), 1); // still at least 1
    }

    #[test]
    fn capacity_override() {
        let d = DeviceProfile::nexus6().with_capacity(3, 500_000);
        assert_eq!(d.ciphertext_capacity(500_000), 3);
    }

    #[test]
    fn scaling() {
        let d = DeviceProfile::nexus6();
        assert!((d.scale(2.0) - 2.0 * d.cpu_scale).abs() < 1e-12);
        assert!(d.cpu_scale > DeviceProfile::desktop_client().cpu_scale);
        assert!(DeviceProfile::iot_k27().cpu_scale >= d.cpu_scale);
    }
}
