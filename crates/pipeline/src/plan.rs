//! Execution plans: the scheme-independent summary of one secure
//! convolution layer that the discrete-event simulator schedules.
//!
//! A [`ConvPlan`] is produced by each scheme in `spot-core` from the same
//! code paths that execute the real HE computation (operation counts are
//! recorded, not hand-derived), so the simulated timeline reflects what
//! the implementation actually does.

use spot_he::evaluator::OpCounts;
use spot_he::params::ParamLevel;

/// How output ciphertexts depend on input ciphertexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputDependency {
    /// Every output needs *all* inputs (channel-wise packing, Cheetah):
    /// the server cannot finish anything until the last input arrives —
    /// the paper's *linear computation stall*.
    AllInputs,
    /// Each input ciphertext independently produces its own outputs
    /// (SPOT structure patching): results stream back immediately.
    PerInput,
}

/// The summary of one secure convolution layer execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvPlan {
    /// Scheme name for reports.
    pub scheme: &'static str,
    /// HE parameter level used.
    pub level: ParamLevel,
    /// Ciphertexts the client encrypts and uploads.
    pub input_cts: usize,
    /// Ciphertexts returned to the client.
    pub output_cts: usize,
    /// Server HE work that can run as soon as one input arrives,
    /// averaged per input ciphertext.
    pub per_ct_ops: OpCounts,
    /// Server HE work requiring all inputs (cross-ciphertext additions);
    /// zero for SPOT.
    pub finalize_ops: OpCounts,
    /// Output dependency structure.
    pub dependency: OutputDependency,
    /// Extra downstream bytes beyond `output_cts` full ciphertexts
    /// (e.g. Cheetah's extracted LWE coefficient ciphertexts).
    pub extra_downstream_bytes: u64,
    /// Client-side share-assembly additions after decryption (overlap
    /// tweaking arithmetic), total element operations.
    pub assembly_elements: u64,
    /// Extra client-side CPU seconds (reference core) beyond standard
    /// decryption — e.g. Cheetah's per-coefficient LWE processing.
    pub client_extra_s: f64,
    /// ReLU elements computed after this convolution (0 = none).
    pub relu_elements: usize,
    /// Serialized bytes of one ciphertext at `level`.
    pub ciphertext_bytes: usize,
    /// SIMD slots actually carrying feature-map values per input
    /// ciphertext (for the memory-utilization figure).
    pub useful_input_slots: usize,
    /// SIMD slots actually carrying result values per output ciphertext.
    pub useful_output_slots: usize,
}

impl ConvPlan {
    /// Total server HE operations (per-ct work across all inputs plus
    /// finalization).
    pub fn total_server_ops(&self) -> OpCounts {
        let n = self.input_cts as u64;
        OpCounts {
            add: self.per_ct_ops.add * n + self.finalize_ops.add,
            mult_plain: self.per_ct_ops.mult_plain * n + self.finalize_ops.mult_plain,
            rotate: self.per_ct_ops.rotate * n + self.finalize_ops.rotate,
            encrypt: 0,
            decrypt: 0,
        }
    }

    /// Upstream communication bytes (client → server).
    pub fn upstream_bytes(&self) -> u64 {
        (self.input_cts * self.ciphertext_bytes) as u64
    }

    /// Downstream communication bytes (server → client).
    pub fn downstream_bytes(&self) -> u64 {
        (self.output_cts * self.ciphertext_bytes) as u64 + self.extra_downstream_bytes
    }

    /// *In-memory value* (Fig. 11 metric): useful feature-map entries per
    /// megabyte of client memory holding input ciphertexts.
    pub fn in_memory_values_per_mb(&self) -> f64 {
        self.useful_input_slots as f64 / (self.ciphertext_bytes as f64 / (1024.0 * 1024.0))
    }

    /// Fraction of each input ciphertext's SIMD slots one image's
    /// packing occupies (`N = 4096` vs `8192` enters through `level`).
    pub fn slot_occupancy(&self) -> f64 {
        self.useful_input_slots as f64 / self.level.degree() as f64
    }

    /// Batch width the slot occupancy supports: how many images'
    /// packings fit each of this layer's input ciphertexts (≥ 1).
    /// Per-batch rotations and key-switches are unchanged by batching,
    /// so each image pays `1/batch` of them; the session layer clamps
    /// this estimate to the exact position granularity of the layer's
    /// lane layout.
    pub fn recommended_batch(&self) -> usize {
        spot_proto::cost::slot_batch_capacity(self.level.degree(), self.useful_input_slots)
    }

    /// Amortized per-image rotation count at batch width `batch`.
    pub fn amortized_rotations_per_image(&self, batch: usize) -> f64 {
        spot_proto::cost::amortized_per_image(self.total_server_ops().rotate, batch)
    }

    /// Rough single-number cost estimate (reference-core seconds plus
    /// WLAN transfer time) used to choose between parameter levels.
    pub fn estimated_seconds(&self, costs: &crate::device::HeCostTable) -> f64 {
        let c = costs.at(self.level);
        let ops = self.total_server_ops();
        let server = ops.add as f64 * c.add
            + ops.mult_plain as f64 * c.mult_plain
            + ops.rotate as f64 * c.rotate;
        let client = self.input_cts as f64 * c.encrypt
            + self.output_cts as f64 * c.decrypt
            + self.client_extra_s;
        let comm = (self.upstream_bytes() + self.downstream_bytes()) as f64 / 12.5e6;
        server + client + comm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> ConvPlan {
        ConvPlan {
            scheme: "test",
            level: ParamLevel::N4096,
            input_cts: 4,
            output_cts: 2,
            per_ct_ops: OpCounts {
                add: 10,
                mult_plain: 20,
                rotate: 5,
                encrypt: 0,
                decrypt: 0,
            },
            finalize_ops: OpCounts {
                add: 3,
                mult_plain: 0,
                rotate: 0,
                encrypt: 0,
                decrypt: 0,
            },
            dependency: OutputDependency::AllInputs,
            extra_downstream_bytes: 100,
            assembly_elements: 0,
            client_extra_s: 0.0,
            relu_elements: 1000,
            ciphertext_bytes: 131_697,
            useful_input_slots: 4096,
            useful_output_slots: 2048,
        }
    }

    #[test]
    fn totals() {
        let p = plan();
        let t = p.total_server_ops();
        assert_eq!(t.add, 43);
        assert_eq!(t.mult_plain, 80);
        assert_eq!(t.rotate, 20);
        assert_eq!(p.upstream_bytes(), 4 * 131_697);
        assert_eq!(p.downstream_bytes(), 2 * 131_697 + 100);
    }

    #[test]
    fn in_memory_metric() {
        let p = plan();
        let v = p.in_memory_values_per_mb();
        // 4096 values in ~0.1256 MB ≈ 32.6k values/MB
        assert!((30_000.0..36_000.0).contains(&v), "v = {v}");
    }

    #[test]
    fn batch_width_follows_slot_occupancy() {
        let mut p = plan();
        // Fully occupied: no batching headroom.
        assert_eq!(p.slot_occupancy(), 1.0);
        assert_eq!(p.recommended_batch(), 1);
        // A half-occupied layer batches 2 images; rotations amortize.
        p.useful_input_slots = 2048;
        assert_eq!(p.slot_occupancy(), 0.5);
        assert_eq!(p.recommended_batch(), 2);
        let per_image = p.amortized_rotations_per_image(p.recommended_batch());
        assert_eq!(per_image, p.total_server_ops().rotate as f64 / 2.0);
        // The larger ring doubles capacity at equal useful slots.
        p.level = ParamLevel::N8192;
        assert_eq!(p.recommended_batch(), 4);
    }
}
