//! # spot-pipeline — tiny-client pipeline simulator
//!
//! Replaces the paper's physical testbed (Nexus 6 / Kinetis K27 / EPYC
//! server) with calibrated cost-model simulation: device profiles with
//! CPU scale factors and memory budgets, per-level HE operation cost
//! tables, and a discrete-event scheduler that replays each scheme's
//! exact operation plan under the client's ciphertext capacity — the
//! mechanism behind the paper's *linear computation stall*.

#![warn(missing_docs)]

pub mod device;
pub mod plan;
pub mod report;
pub mod sim;

pub use device::{DeviceProfile, HeCostTable, OpCosts};
pub use plan::{ConvPlan, OutputDependency};
pub use sim::{simulate_conv, simulate_layers, LayerTiming, SimConfig, SimResult};
