//! Cross-party trace merge and overlap attribution.
//!
//! Takes the Chrome-trace exports of a client and a server process,
//! aligns the server's clock onto the client's using the
//! [`crate::clocksync`] estimate the client recorded at teardown, and
//! produces:
//!
//! * one merged Chrome-trace JSON — client lanes under `pid` 1, server
//!   lanes under `pid` 2, with flow arrows connecting each tagged wire
//!   send to the receive that consumed it;
//! * a per-layer overlap attribution: for every conv layer (client
//!   `send_all` span matched to the server `serve_conv` span via the
//!   wire-propagated trace id), how much of the layer window both
//!   parties were busy, how much only one was, and how much both idled.
//!
//! ## Busy model
//!
//! A party is *busy* at time `t` when any of its spans covers `t`,
//! minus the explicit wait spans — stream `idle`, `blocked (channel
//! full)`, `barrier (await all inputs)`, and wire `recv` (a party
//! parked in `recv` is waiting on its peer, not working). Overlap
//! efficiency for a window is `both_busy / min(client_busy,
//! server_busy)`: the fraction of the less-busy party's work that the
//! other party's work hid. SPOT's per-input streaming keeps this near
//! 1; a channelwise all-input barrier collapses it — the linear
//! computation stall, made visible.

use crate::chrome::{escape_into, push_us};
use crate::clocksync::{self, ClockEstimate};
use crate::{Cat, Event, Name, Phase};
use std::collections::HashMap;
use std::fmt::Write as _;

/// Span names that mean "waiting", not "working".
const WAIT_SPANS: [&str; 4] = [
    "idle",
    "blocked (channel full)",
    "barrier (await all inputs)",
    "recv",
];

/// One party's exported trace: its events plus its thread-name table.
#[derive(Debug, Clone, Default)]
pub struct PartyTrace {
    /// Recorded events (any order; the merge sorts).
    pub events: Vec<Event>,
    /// `(tid, name)` pairs from the party's thread registry.
    pub threads: Vec<(u32, String)>,
}

/// A matched wire flow: a tagged send on one side paired with the
/// receive of the same frame on the other, timestamps already on the
/// merged (client) clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowArrow {
    /// The causal tag both ends carried.
    pub tag: u64,
    /// True for client→server (upload), false for server→client.
    pub client_to_server: bool,
    /// Sending thread (in the sender's tid space).
    pub from_tid: u32,
    /// Send-span start, merged clock.
    pub from_ts_ns: u64,
    /// Receiving thread (in the receiver's tid space).
    pub to_tid: u32,
    /// Receive-span end, merged clock.
    pub to_ts_ns: u64,
}

/// Overlap attribution for one conv layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerOverlap {
    /// Display label (server span name).
    pub label: String,
    /// Wire trace id that matched the pair (0 = chronological match).
    pub trace: u64,
    /// Layer window: union of the client and server layer spans.
    pub window_ns: u64,
    /// Client busy time within the window.
    pub client_busy_ns: u64,
    /// Server busy time within the window.
    pub server_busy_ns: u64,
    /// Time both parties were busy simultaneously.
    pub both_busy_ns: u64,
    /// Client busy while the server waited.
    pub client_only_ns: u64,
    /// Server busy while the client waited.
    pub server_only_ns: u64,
    /// Neither party busy.
    pub both_idle_ns: u64,
    /// `both_busy / min(client_busy, server_busy)`, clamped to [0, 1].
    pub efficiency: f64,
    /// Flow arrows whose send started inside the window.
    pub flows: usize,
}

/// Whole-session overlap totals (same decomposition as a layer, over
/// the full merged trace extent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverlapTotals {
    /// First-event to last-event extent on the merged clock.
    pub window_ns: u64,
    /// Client busy time.
    pub client_busy_ns: u64,
    /// Server busy time.
    pub server_busy_ns: u64,
    /// Both busy simultaneously.
    pub both_busy_ns: u64,
    /// Client busy, server waiting.
    pub client_only_ns: u64,
    /// Server busy, client waiting.
    pub server_only_ns: u64,
    /// Neither busy.
    pub both_idle_ns: u64,
    /// `both_busy / min(client_busy, server_busy)`, clamped to [0, 1].
    pub efficiency: f64,
}

/// Everything the merge computed.
#[derive(Debug, Clone)]
pub struct MergeReport {
    /// Clock alignment recovered from the client trace, if recorded.
    pub clock: Option<ClockEstimate>,
    /// Per-layer attribution, in time order.
    pub layers: Vec<LayerOverlap>,
    /// Matched flow arrows, in send-time order.
    pub flows: Vec<FlowArrow>,
    /// Whole-session totals.
    pub totals: OverlapTotals,
    /// Client span count (merged timeline sanity number).
    pub client_spans: usize,
    /// Server span count.
    pub server_spans: usize,
}

/// The merge result: the Perfetto-loadable JSON and the report.
#[derive(Debug, Clone)]
pub struct Merged {
    /// Merged Chrome-trace JSON (client pid 1, server pid 2, flows).
    pub json: String,
    /// Attribution report.
    pub report: MergeReport,
}

// ---------------------------------------------------------------------
// Interval arithmetic
// ---------------------------------------------------------------------

/// Sorts and coalesces half-open intervals `[start, end)`.
fn normalize(mut iv: Vec<(u64, u64)>) -> Vec<(u64, u64)> {
    iv.retain(|&(s, e)| e > s);
    iv.sort_unstable();
    let mut out: Vec<(u64, u64)> = Vec::with_capacity(iv.len());
    for (s, e) in iv {
        match out.last_mut() {
            Some(last) if s <= last.1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// `a − b` for normalized interval sets.
fn subtract(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::with_capacity(a.len());
    let mut bi = 0;
    for &(mut s, e) in a {
        while s < e {
            while bi < b.len() && b[bi].1 <= s {
                bi += 1;
            }
            match b.get(bi) {
                Some(&(bs, be)) if bs < e => {
                    if s < bs {
                        out.push((s, bs));
                    }
                    s = be.max(s);
                }
                _ => {
                    out.push((s, e));
                    break;
                }
            }
        }
        // A cut interval may have consumed b entries needed by the next
        // a interval only if they end before it starts — rewinding is
        // unnecessary because a is sorted and disjoint.
    }
    normalize(out)
}

/// `a ∩ b` for normalized interval sets.
fn intersect(a: &[(u64, u64)], b: &[(u64, u64)]) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let s = a[i].0.max(b[j].0);
        let e = a[i].1.min(b[j].1);
        if s < e {
            out.push((s, e));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Total length of a normalized interval set.
fn measure(iv: &[(u64, u64)]) -> u64 {
    iv.iter().map(|&(s, e)| e - s).sum()
}

/// Clips a normalized set to `[s, e)`.
fn clip(iv: &[(u64, u64)], s: u64, e: u64) -> Vec<(u64, u64)> {
    intersect(iv, &[(s, e)])
}

// ---------------------------------------------------------------------
// Event helpers
// ---------------------------------------------------------------------

fn arg_value(ev: &Event, key: &str) -> Option<u64> {
    match (ev.arg, ev.arg2) {
        (Some((k, v)), _) if k == key => Some(v),
        (_, Some((k, v))) if k == key => Some(v),
        _ => None,
    }
}

fn is_span(ev: &Event) -> bool {
    matches!(ev.phase, Phase::Span { .. })
}

fn is_wait(ev: &Event) -> bool {
    WAIT_SPANS.contains(&ev.name.as_str())
}

/// Busy interval set for one party: all span coverage minus wait spans.
fn busy_intervals(events: &[Event]) -> Vec<(u64, u64)> {
    let mut work = Vec::new();
    let mut wait = Vec::new();
    for ev in events.iter().filter(|e| is_span(e)) {
        let iv = (ev.ts_ns, ev.end_ns());
        if is_wait(ev) {
            wait.push(iv);
        } else {
            work.push(iv);
        }
    }
    subtract(&normalize(work), &normalize(wait))
}

/// Shifts every timestamp of a server event onto the client clock.
fn align(events: &[Event], clock: Option<&ClockEstimate>) -> Vec<Event> {
    let Some(est) = clock else {
        return events.to_vec();
    };
    events
        .iter()
        .map(|ev| {
            let mut ev = ev.clone();
            ev.ts_ns = est.server_to_client_ns(ev.ts_ns);
            ev
        })
        .collect()
}

/// Recovers the clock estimate the client recorded via
/// [`clocksync::record`] from its exported gauges.
pub fn clock_from_events(events: &[Event]) -> Option<ClockEstimate> {
    let find = |name: &str| {
        events.iter().rev().find_map(|ev| match ev.phase {
            Phase::Gauge { value } if ev.name.as_str() == name => Some(value),
            _ => None,
        })
    };
    clocksync::from_gauges(
        find("clock_offset_fwd_ns"),
        find("clock_offset_back_ns"),
        find("clock_rtt_ns"),
        find("clock_err_ns"),
    )
}

// ---------------------------------------------------------------------
// Flow matching
// ---------------------------------------------------------------------

/// Pairs tagged sends from `tx` with tagged receives from `rx` — the
/// k-th send of a tag matches the k-th receive of the same tag (frames
/// are FIFO per transport, so occurrence order is causal order).
fn match_flows(tx: &[Event], rx: &[Event], client_to_server: bool) -> Vec<FlowArrow> {
    let mut sends: HashMap<u64, Vec<&Event>> = HashMap::new();
    for ev in tx
        .iter()
        .filter(|e| is_span(e) && e.name.as_str() == "send")
    {
        if let Some(tag) = arg_value(ev, "flow") {
            sends.entry(tag).or_default().push(ev);
        }
    }
    let mut used: HashMap<u64, usize> = HashMap::new();
    let mut arrows = Vec::new();
    for ev in rx
        .iter()
        .filter(|e| is_span(e) && e.name.as_str() == "recv")
    {
        let Some(tag) = arg_value(ev, "flow") else {
            continue;
        };
        let k = used.entry(tag).or_insert(0);
        if let Some(send) = sends.get(&tag).and_then(|v| v.get(*k)) {
            *k += 1;
            arrows.push(FlowArrow {
                tag,
                client_to_server,
                from_tid: send.tid,
                from_ts_ns: send.ts_ns,
                to_tid: ev.tid,
                to_ts_ns: ev.end_ns().saturating_sub(1).max(ev.ts_ns),
            });
        }
    }
    arrows.sort_by_key(|a| (a.from_ts_ns, a.tag));
    arrows
}

// ---------------------------------------------------------------------
// Layer matching and attribution
// ---------------------------------------------------------------------

fn layer_spans<'a>(events: &'a [Event], prefix: &str) -> Vec<&'a Event> {
    let mut spans: Vec<&Event> = events
        .iter()
        .filter(|e| is_span(e) && e.name.as_str().starts_with(prefix))
        .collect();
    spans.sort_by_key(|e| (e.ts_ns, e.id));
    spans
}

/// Matches client `send_all` spans to server `serve_conv` spans: by the
/// wire-propagated trace id when both sides carry one, otherwise by
/// chronological position (recorded replays have `trace == 0`).
fn match_layers<'a>(client: &'a [Event], server: &'a [Event]) -> Vec<(&'a Event, &'a Event, u64)> {
    let cl = layer_spans(client, "send_all");
    let sv = layer_spans(server, "serve_conv");
    let by_id: Vec<(&Event, &Event, u64)> = sv
        .iter()
        .filter_map(|s| {
            let trace = arg_value(s, "trace").filter(|&t| t != 0)?;
            let c = cl.iter().find(|c| arg_value(c, "trace") == Some(trace))?;
            Some((*c, *s, trace))
        })
        .collect();
    if by_id.len() == sv.len() && !sv.is_empty() {
        return by_id;
    }
    cl.iter()
        .zip(sv.iter())
        .map(|(c, s)| (*c, *s, 0u64))
        .collect()
}

fn attribute_window(
    label: String,
    trace: u64,
    start: u64,
    end: u64,
    client_busy: &[(u64, u64)],
    server_busy: &[(u64, u64)],
    flows: usize,
) -> LayerOverlap {
    let window_ns = end.saturating_sub(start);
    let cb = clip(client_busy, start, end);
    let sb = clip(server_busy, start, end);
    let both = intersect(&cb, &sb);
    let client_busy_ns = measure(&cb);
    let server_busy_ns = measure(&sb);
    let both_busy_ns = measure(&both);
    let client_only_ns = client_busy_ns - both_busy_ns;
    let server_only_ns = server_busy_ns - both_busy_ns;
    let covered = client_busy_ns + server_busy_ns - both_busy_ns;
    let both_idle_ns = window_ns.saturating_sub(covered);
    let denom = client_busy_ns.min(server_busy_ns);
    let efficiency = if denom == 0 {
        0.0
    } else {
        (both_busy_ns as f64 / denom as f64).clamp(0.0, 1.0)
    };
    LayerOverlap {
        label,
        trace,
        window_ns,
        client_busy_ns,
        server_busy_ns,
        both_busy_ns,
        client_only_ns,
        server_only_ns,
        both_idle_ns,
        efficiency,
        flows,
    }
}

// ---------------------------------------------------------------------
// Merge
// ---------------------------------------------------------------------

/// Merges a client and a server trace: aligns clocks, matches layers
/// and flows, computes the attribution, and renders the merged
/// Chrome-trace JSON.
pub fn merge(client: &PartyTrace, server: &PartyTrace) -> Merged {
    let clock = clock_from_events(&client.events);
    let mut client_events = client.events.clone();
    client_events.sort_by_key(|e| (e.ts_ns, e.id));
    let mut server_events = align(&server.events, clock.as_ref());
    server_events.sort_by_key(|e| (e.ts_ns, e.id));

    let flows_up = match_flows(&client_events, &server_events, true);
    let flows_down = match_flows(&server_events, &client_events, false);
    let mut flows = flows_up;
    flows.extend(flows_down);
    flows.sort_by_key(|a| (a.from_ts_ns, a.tag));

    let client_busy = busy_intervals(&client_events);
    let server_busy = busy_intervals(&server_events);

    let layers: Vec<LayerOverlap> = match_layers(&client_events, &server_events)
        .into_iter()
        .enumerate()
        .map(|(i, (c, s, trace))| {
            let start = c.ts_ns.min(s.ts_ns);
            let end = c.end_ns().max(s.end_ns());
            let n_flows = flows
                .iter()
                .filter(|f| f.from_ts_ns >= start && f.from_ts_ns < end)
                .count();
            attribute_window(
                format!("L{i} {}", s.name.as_str()),
                trace,
                start,
                end,
                &client_busy,
                &server_busy,
                n_flows,
            )
        })
        .collect();

    let span_count = |evs: &[Event]| evs.iter().filter(|e| is_span(e)).count();
    let extent = |evs: &[Event]| {
        evs.iter()
            .map(|e| (e.ts_ns, e.end_ns()))
            .fold((u64::MAX, 0u64), |(s, e), (a, b)| (s.min(a), e.max(b)))
    };
    let (cs, ce) = extent(&client_events);
    let (ss, se) = extent(&server_events);
    let (start, end) = if client_events.is_empty() && server_events.is_empty() {
        (0, 0)
    } else {
        (cs.min(ss), ce.max(se))
    };
    let t = attribute_window(
        String::new(),
        0,
        start,
        end,
        &client_busy,
        &server_busy,
        flows.len(),
    );
    let totals = OverlapTotals {
        window_ns: t.window_ns,
        client_busy_ns: t.client_busy_ns,
        server_busy_ns: t.server_busy_ns,
        both_busy_ns: t.both_busy_ns,
        client_only_ns: t.client_only_ns,
        server_only_ns: t.server_only_ns,
        both_idle_ns: t.both_idle_ns,
        efficiency: t.efficiency,
    };

    let report = MergeReport {
        clock,
        layers,
        flows,
        totals,
        client_spans: span_count(&client_events),
        server_spans: span_count(&server_events),
    };
    let json = render_merged_json(
        &client_events,
        &client.threads,
        &server_events,
        &server.threads,
        &report.flows,
    );
    Merged { json, report }
}

// ---------------------------------------------------------------------
// Merged JSON rendering
// ---------------------------------------------------------------------

const CLIENT_PID: u32 = 1;
const SERVER_PID: u32 = 2;

fn render_merged_json(
    client_events: &[Event],
    client_threads: &[(u32, String)],
    server_events: &[Event],
    server_threads: &[(u32, String)],
    flows: &[FlowArrow],
) -> String {
    let mut out = String::with_capacity(
        256 + (client_events.len() + server_events.len()) * 96 + flows.len() * 160,
    );
    out.push_str("[\n");
    let mut first = true;
    let mut emit = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    for (pid, pname) in [(CLIENT_PID, "spot-client"), (SERVER_PID, "spot-server")] {
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{pid},\"args\":{{\"name\":\"{pname}\"}}}}"
        );
    }
    for (pid, threads) in [(CLIENT_PID, client_threads), (SERVER_PID, server_threads)] {
        for (tid, name) in threads {
            emit(&mut out);
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"name\":\""
            );
            escape_into(&mut out, name);
            out.push_str("\"}}");
        }
    }

    for (pid, events) in [(CLIENT_PID, client_events), (SERVER_PID, server_events)] {
        for ev in events {
            emit(&mut out);
            push_event(&mut out, ev, pid);
        }
    }

    for (i, f) in flows.iter().enumerate() {
        let (from_pid, to_pid) = if f.client_to_server {
            (CLIENT_PID, SERVER_PID)
        } else {
            (SERVER_PID, CLIENT_PID)
        };
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"ct\",\"cat\":\"net\",\"ph\":\"s\",\"id\":{},\"pid\":{from_pid},\"tid\":{},\"ts\":",
            i + 1,
            f.from_tid
        );
        push_us(&mut out, f.from_ts_ns);
        out.push('}');
        emit(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"ct\",\"cat\":\"net\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\"pid\":{to_pid},\"tid\":{},\"ts\":",
            i + 1,
            f.to_tid
        );
        push_us(&mut out, f.to_ts_ns);
        out.push('}');
    }

    out.push_str("\n]\n");
    out
}

fn push_event(out: &mut String, ev: &Event, pid: u32) {
    out.push_str("{\"name\":\"");
    escape_into(out, ev.name.as_str());
    out.push_str("\",\"cat\":\"");
    out.push_str(ev.cat.name());
    out.push_str("\",\"ph\":\"");
    match ev.phase {
        Phase::Span { .. } => out.push('X'),
        Phase::Instant => out.push('i'),
        Phase::Gauge { .. } => out.push('C'),
    }
    out.push_str("\",\"ts\":");
    push_us(out, ev.ts_ns);
    if let Phase::Span { dur_ns } = ev.phase {
        out.push_str(",\"dur\":");
        push_us(out, dur_ns);
    }
    let _ = write!(out, ",\"pid\":{pid},\"tid\":{}", ev.tid);
    if matches!(ev.phase, Phase::Instant) {
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"args\":{");
    let mut first_arg = true;
    let mut arg_u64 = |out: &mut String, key: &str, v: u64| {
        if first_arg {
            first_arg = false;
        } else {
            out.push(',');
        }
        let _ = write!(out, "\"{key}\":{v}");
    };
    match ev.phase {
        Phase::Gauge { value } => arg_u64(out, "value", value),
        _ => {
            if ev.id != 0 {
                arg_u64(out, "span", ev.id as u64);
            }
            if ev.parent != 0 {
                arg_u64(out, "parent", ev.parent as u64);
            }
        }
    }
    if let Some((key, v)) = ev.arg {
        arg_u64(out, key, v);
    }
    if let Some((key, v)) = ev.arg2 {
        arg_u64(out, key, v);
    }
    out.push_str("}}");
}

// ---------------------------------------------------------------------
// Report rendering
// ---------------------------------------------------------------------

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

impl MergeReport {
    /// Plain-text attribution table plus the summary lines the smoke
    /// tests grep for.
    pub fn text(&self) -> String {
        let mut out = String::new();
        match &self.clock {
            Some(c) => {
                let _ = writeln!(
                    out,
                    "clock: server-client offset {:+.3} ms (rtt {:.3} ms, err <= {:.3} ms)",
                    c.offset_ns as f64 / 1e6,
                    ms(c.rtt_ns),
                    ms(c.err_ns),
                );
            }
            None => {
                let _ = writeln!(out, "clock: no estimate in client trace (unaligned merge)");
            }
        }
        let _ = writeln!(
            out,
            "spans: {} client, {} server; flows: {}",
            self.client_spans,
            self.server_spans,
            self.flows.len()
        );
        let _ = writeln!(
            out,
            "{:<22} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>6}",
            "layer", "window", "c-busy", "s-busy", "overlap", "c-only", "s-only", "idle", "eff"
        );
        for l in &self.layers {
            let _ = writeln!(
                out,
                "{:<22} {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>8.2}m {:>5.1}%",
                l.label,
                ms(l.window_ns),
                ms(l.client_busy_ns),
                ms(l.server_busy_ns),
                ms(l.both_busy_ns),
                ms(l.client_only_ns),
                ms(l.server_only_ns),
                ms(l.both_idle_ns),
                l.efficiency * 100.0,
            );
        }
        let t = &self.totals;
        let _ = writeln!(
            out,
            "critical path: client-only {:.2} ms, server-only {:.2} ms, overlapped {:.2} ms, both-idle {:.2} ms",
            ms(t.client_only_ns),
            ms(t.server_only_ns),
            ms(t.both_busy_ns),
            ms(t.both_idle_ns),
        );
        let _ = writeln!(
            out,
            "overlap efficiency: {:.4} (both-busy {:.2} ms / min-busy {:.2} ms)",
            t.efficiency,
            ms(t.both_busy_ns),
            ms(t.client_busy_ns.min(t.server_busy_ns)),
        );
        out
    }

    /// JSON report (`spot-bench-pipeline/v1`), shaped for `bench_check`:
    /// layer objects lead with a string `layer` key so the flattener
    /// names them, and the volatile clock numbers stay out.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"schema\": \"spot-bench-pipeline/v1\",\n");
        let _ = writeln!(out, "  \"layer_count\": {},", self.layers.len());
        let _ = writeln!(out, "  \"flow_count\": {},", self.flows.len());
        out.push_str("  \"layers\": [\n");
        for (i, l) in self.layers.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"layer\": \"{}\", \"spot_overlap_efficiency\": {:.4}, \"flows\": {}}}",
                l.label.replace('"', ""),
                l.efficiency,
                l.flows
            );
            out.push_str(if i + 1 < self.layers.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"overall\": {{\"spot_overlap_efficiency\": {:.4}}}",
            self.totals.efficiency
        );
        out.push_str("}\n");
        out
    }
}

// ---------------------------------------------------------------------
// Chrome-trace reader
// ---------------------------------------------------------------------

/// Arg keys the tracer emits; parsed args must intern to one of these
/// (`Event` arg keys are `&'static str`). Unknown keys are dropped —
/// the merge itself only consumes `flow` and `trace`.
const KNOWN_ARG_KEYS: [&str; 10] = [
    "batch",
    "bytes",
    "extra",
    "flow",
    "input_cts",
    "output_cts",
    "round",
    "session",
    "trace",
    "workers",
];

fn intern_arg_key(key: &str) -> Option<&'static str> {
    KNOWN_ARG_KEYS.iter().find(|&&k| k == key).copied()
}

/// Converts the exporter's microsecond field (printed `<us>.<3 digits>`)
/// back to integer nanoseconds.
fn us_field_ns(us: f64) -> u64 {
    (us * 1_000.0).round() as u64
}

/// Reads one party's Chrome-trace export (as written by
/// [`crate::chrome::chrome_trace_json_with_threads`]) back into a
/// [`PartyTrace`]. Flow events (`ph` `"s"`/`"f"`, present only in
/// already-merged files) are skipped — the merge re-derives them — and
/// unknown arg keys are dropped.
pub fn parse_chrome_trace(json: &str) -> Result<PartyTrace, String> {
    use crate::json::Value;
    let doc = crate::json::parse(json)?;
    let items = doc.as_array().ok_or("trace root must be a JSON array")?;
    let mut party = PartyTrace::default();
    for item in items {
        let ph = item
            .get("ph")
            .and_then(Value::as_str)
            .ok_or("event without ph")?;
        let tid = item.get("tid").and_then(Value::as_f64).unwrap_or(0.0) as u32;
        let name = item.get("name").and_then(Value::as_str).unwrap_or("");
        let args = item.get("args");
        let arg_f64 = |key: &str| args.and_then(|a| a.get(key)).and_then(Value::as_f64);
        match ph {
            "M" => {
                if name == "thread_name" {
                    if let Some(n) = args.and_then(|a| a.get("name")).and_then(Value::as_str) {
                        party.threads.push((tid, n.to_string()));
                    }
                }
                continue;
            }
            "s" | "f" | "t" => continue,
            _ => {}
        }
        let ts_ns = us_field_ns(
            item.get("ts")
                .and_then(Value::as_f64)
                .ok_or("event without ts")?,
        );
        let phase = match ph {
            "X" => Phase::Span {
                dur_ns: us_field_ns(item.get("dur").and_then(Value::as_f64).unwrap_or(0.0)),
            },
            "i" => Phase::Instant,
            "C" => Phase::Gauge {
                value: arg_f64("value").unwrap_or(0.0) as u64,
            },
            other => return Err(format!("unsupported event phase {other:?}")),
        };
        let (mut arg, mut arg2) = (None, None);
        if let Some(Value::Object(members)) = args {
            for (k, v) in members {
                if matches!(k.as_str(), "span" | "parent" | "value") {
                    continue;
                }
                let (Some(key), Some(v)) = (intern_arg_key(k), v.as_f64()) else {
                    continue;
                };
                if arg.is_none() {
                    arg = Some((key, v as u64));
                } else if arg2.is_none() {
                    arg2 = Some((key, v as u64));
                }
            }
        }
        party.events.push(Event {
            name: Name::Owned(name.to_string()),
            cat: item
                .get("cat")
                .and_then(Value::as_str)
                .and_then(Cat::from_name)
                .unwrap_or(Cat::App),
            ts_ns,
            tid,
            id: arg_f64("span").unwrap_or(0.0) as u32,
            parent: arg_f64("parent").unwrap_or(0.0) as u32,
            arg,
            arg2,
            phase,
        });
    }
    Ok(party)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::too_many_arguments)]
    fn sp(
        name: &'static str,
        cat: Cat,
        ts: u64,
        dur: u64,
        tid: u32,
        id: u32,
        arg: Option<(&'static str, u64)>,
        arg2: Option<(&'static str, u64)>,
    ) -> Event {
        Event {
            name: Name::Static(name),
            cat,
            ts_ns: ts,
            tid,
            id,
            parent: 0,
            arg,
            arg2,
            phase: Phase::Span { dur_ns: dur },
        }
    }

    fn gauge_ev(name: &'static str, value: u64) -> Event {
        Event {
            name: Name::Static(name),
            cat: Cat::Net,
            ts_ns: 0,
            tid: 1,
            id: 0,
            parent: 0,
            arg: None,
            arg2: None,
            phase: Phase::Gauge { value },
        }
    }

    #[test]
    fn interval_arithmetic() {
        let n = normalize(vec![(5, 10), (1, 3), (9, 12), (12, 12)]);
        assert_eq!(n, vec![(1, 3), (5, 12)]);
        assert_eq!(measure(&n), 9);
        let s = subtract(&n, &[(2, 6), (11, 20)]);
        assert_eq!(s, vec![(1, 2), (6, 11)]);
        let i = intersect(&n, &[(0, 2), (8, 30)]);
        assert_eq!(i, vec![(1, 2), (8, 12)]);
        assert_eq!(clip(&n, 6, 10), vec![(6, 10)]);
        assert!(subtract(&[], &[(0, 5)]).is_empty());
        assert!(intersect(&n, &[]).is_empty());
    }

    #[test]
    fn busy_excludes_wait_spans() {
        // Work 0..100 with a recv wait 40..70 nested inside.
        let events = vec![
            sp("send_all spot", Cat::Client, 0, 100, 1, 1, None, None),
            sp("recv", Cat::Net, 40, 30, 1, 2, None, None),
        ];
        let busy = busy_intervals(&events);
        assert_eq!(busy, vec![(0, 40), (70, 100)]);
        assert_eq!(measure(&busy), 70);
    }

    #[test]
    fn flows_match_kth_occurrence() {
        let tx = vec![
            sp(
                "send",
                Cat::Net,
                0,
                5,
                1,
                1,
                Some(("bytes", 9)),
                Some(("flow", 7)),
            ),
            sp(
                "send",
                Cat::Net,
                10,
                5,
                1,
                2,
                Some(("bytes", 9)),
                Some(("flow", 7)),
            ),
            sp("send", Cat::Net, 20, 5, 1, 3, Some(("bytes", 9)), None), // untagged
        ];
        let rx = vec![
            sp(
                "recv",
                Cat::Net,
                4,
                6,
                9,
                4,
                Some(("bytes", 9)),
                Some(("flow", 7)),
            ),
            sp(
                "recv",
                Cat::Net,
                14,
                6,
                9,
                5,
                Some(("bytes", 9)),
                Some(("flow", 7)),
            ),
            sp(
                "recv",
                Cat::Net,
                30,
                6,
                9,
                6,
                Some(("bytes", 9)),
                Some(("flow", 99)),
            ), // no send
        ];
        let arrows = match_flows(&tx, &rx, true);
        assert_eq!(arrows.len(), 2);
        assert_eq!(arrows[0].from_ts_ns, 0);
        assert_eq!(arrows[0].to_ts_ns, 9); // end − 1
        assert_eq!(arrows[1].from_ts_ns, 10);
        assert!(arrows.iter().all(|a| a.tag == 7 && a.client_to_server));
    }

    #[test]
    fn merge_attributes_overlap_and_renders_valid_json() {
        // Client: layer span 0..100 busy throughout except recv 60..90.
        // Server clock runs 1000 ns ahead; its serve span covers
        // (client time) 20..80.
        let client = PartyTrace {
            events: vec![
                sp(
                    "send_all spot",
                    Cat::Client,
                    0,
                    100,
                    1,
                    1,
                    Some(("input_cts", 4)),
                    Some(("trace", 42)),
                ),
                sp("recv", Cat::Net, 60, 30, 1, 2, None, None),
                sp(
                    "send",
                    Cat::Net,
                    5,
                    5,
                    1,
                    3,
                    Some(("bytes", 64)),
                    Some(("flow", 7)),
                ),
                gauge_ev("clock_offset_fwd_ns", 1000),
                gauge_ev("clock_rtt_ns", 200),
                gauge_ev("clock_err_ns", 100),
            ],
            threads: vec![(1, "main".into())],
        };
        let server = PartyTrace {
            events: vec![
                sp(
                    "serve_conv spot",
                    Cat::Server,
                    1020,
                    60,
                    1,
                    10,
                    Some(("trace", 42)),
                    None,
                ),
                sp(
                    "recv",
                    Cat::Net,
                    1002,
                    6,
                    1,
                    11,
                    Some(("bytes", 64)),
                    Some(("flow", 7)),
                ),
            ],
            threads: vec![(1, "main".into())],
        };
        let merged = merge(&client, &server);
        let r = &merged.report;
        assert_eq!(r.clock.map(|c| c.offset_ns), Some(1000));
        assert_eq!(r.layers.len(), 1);
        let l = &r.layers[0];
        assert_eq!(l.trace, 42);
        assert_eq!(l.window_ns, 100);
        // Client busy 0..60 ∪ 90..100 = 70; server busy 20..80 = 60
        // minus nothing (recv at 2..8 is outside the serve span).
        assert_eq!(l.client_busy_ns, 70);
        assert_eq!(l.server_busy_ns, 60);
        // Overlap: (0..60 ∪ 90..100) ∩ (20..80) = 20..60 = 40.
        assert_eq!(l.both_busy_ns, 40);
        assert_eq!(l.client_only_ns, 30);
        assert_eq!(l.server_only_ns, 20);
        assert!((l.efficiency - 40.0 / 60.0).abs() < 1e-9);
        assert_eq!(r.flows.len(), 1);
        assert!(r.flows[0].client_to_server);
        crate::json::validate(&merged.json).expect("merged trace is valid JSON");
        assert!(merged.json.contains("\"ph\":\"s\""));
        assert!(merged.json.contains("\"bp\":\"e\""));
        assert!(merged.json.contains("\"pid\":2"));
        assert!(merged.json.contains("spot-server"));
        let text = r.text();
        assert!(text.contains("overlap efficiency:"), "{text}");
        let json = r.to_json();
        crate::json::validate(&json).expect("report json");
        assert!(json.contains("spot_overlap_efficiency"));
    }

    #[test]
    fn chrome_export_parses_back_losslessly() {
        let events = vec![
            sp(
                "send_all spot",
                Cat::Client,
                1_000,
                99_499,
                1,
                1,
                Some(("input_cts", 4)),
                Some(("trace", 42)),
            ),
            sp(
                "recv",
                Cat::Net,
                2_500,
                750,
                2,
                2,
                Some(("bytes", 64)),
                Some(("flow", 7)),
            ),
            gauge_ev("clock_offset_fwd_ns", 1234),
            Event {
                name: Name::Owned("mark \"x\"".into()),
                cat: Cat::App,
                ts_ns: 77,
                tid: 1,
                id: 0,
                parent: 1,
                arg: None,
                arg2: None,
                phase: Phase::Instant,
            },
        ];
        let threads = vec![(1, "main".to_string()), (2, "server-0".to_string())];
        let json = crate::chrome::chrome_trace_json_with_threads(&events, &threads);
        let back = parse_chrome_trace(&json).expect("parse exported trace");
        assert_eq!(back.threads, threads);
        assert_eq!(back.events.len(), events.len());
        for (got, want) in back.events.iter().zip(&events) {
            assert_eq!(got.name.as_str(), want.name.as_str());
            assert_eq!(got.cat, want.cat);
            assert_eq!(got.ts_ns, want.ts_ns);
            assert_eq!(got.tid, want.tid);
            assert_eq!(got.id, want.id);
            assert_eq!(got.parent, want.parent);
            assert_eq!(got.arg, want.arg);
            assert_eq!(got.arg2, want.arg2);
            assert_eq!(got.phase, want.phase);
        }
    }

    #[test]
    fn chronological_fallback_when_trace_ids_absent() {
        let client = PartyTrace {
            events: vec![
                sp("send_all spot", Cat::Client, 0, 50, 1, 1, None, None),
                sp("send_all spot", Cat::Client, 100, 50, 1, 2, None, None),
            ],
            threads: vec![],
        };
        let server = PartyTrace {
            events: vec![
                sp("serve_conv spot", Cat::Server, 10, 30, 1, 3, None, None),
                sp("serve_conv spot", Cat::Server, 110, 30, 1, 4, None, None),
            ],
            threads: vec![],
        };
        let merged = merge(&client, &server);
        assert_eq!(merged.report.layers.len(), 2);
        assert!(merged.report.layers.iter().all(|l| l.trace == 0));
        assert_eq!(merged.report.layers[0].window_ns, 50);
        assert_eq!(merged.report.layers[1].window_ns, 50);
    }
}
