//! Live metrics registry: named counters, gauges, and log2-bucketed
//! latency histograms for a long-running server.
//!
//! The trace layer ([`crate`]) answers *"what happened in this run?"*
//! post-mortem: enable, run, drain, export. A serving process needs the
//! complementary question answered continuously — *"what is the p99
//! right now?"* — without stopping the process or buffering events.
//! This module is that substrate:
//!
//! * Every metric is a plain struct of **relaxed atomics** — no locks on
//!   the record path, exact totals under parallel workers (relaxed
//!   additions commute, the same argument as [`crate::CounterSnapshot`]).
//! * [`Histogram`] has a **fixed footprint** (64 log2 buckets + count +
//!   sum, 528 bytes) regardless of how many values it absorbs, so a
//!   latency series can run for weeks without growing.
//! * Recording through the registry-facing methods ([`Counter::inc`],
//!   [`Gauge::set`], [`Histogram::observe`], [`Histogram::start_timer`])
//!   is gated on a process-wide switch with the same disabled-path
//!   budget as the trace counters: one relaxed load and a branch
//!   (measured by the `trace_overhead` bench). The `*_always` variants
//!   ([`Histogram::record`], …) bypass the switch for callers that own
//!   their metric outright (e.g. a load generator's latency histogram).
//! * [`snapshot`]/[`MetricsSnapshot::delta`] have exact semantics:
//!   counters and histogram buckets subtract element-wise (saturating),
//!   gauges keep the later sample.
//!
//! Two encoders serve the snapshots: [`encode_prometheus`] renders the
//! standard text exposition format (`name{labels} value`, histograms as
//! cumulative `_bucket{le=...}` series), [`encode_json`] a JSON document
//! validated by [`crate::json::validate`].
//!
//! ## Bucketing scheme
//!
//! Bucket `i` of a histogram covers `[2^i, 2^(i+1) - 1]`; bucket 0
//! additionally absorbs the value 0. Every `u64` maps to exactly one of
//! the 64 buckets via one `leading_zeros`, and any quantile estimate is
//! within a factor of 2 of the true order statistic (the estimate and
//! the true value share a bucket whose width is < its lower bound).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Global switch
// ---------------------------------------------------------------------

static METRICS_ON: AtomicBool = AtomicBool::new(false);

/// Whether registry-facing recording is on. This is the disabled-path
/// hot check: one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    METRICS_ON.load(Ordering::Relaxed)
}

/// Turns registry recording on (a server does this when it starts its
/// admin endpoint). Idempotent.
pub fn enable() {
    METRICS_ON.store(true, Ordering::SeqCst);
}

/// Turns registry recording off. Recorded values are kept.
pub fn disable() {
    METRICS_ON.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------
// Metric cells
// ---------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    val: AtomicU64,
}

impl Counter {
    /// A standalone (unregistered) counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` when metrics are [`enabled`]; disabled path is one
    /// relaxed load and a branch.
    #[inline(always)]
    pub fn inc(&self, n: u64) {
        if enabled() {
            self.inc_always(n);
        }
    }

    /// Adds `n` unconditionally (caller-owned metrics).
    #[inline]
    pub fn inc_always(&self, n: u64) {
        self.val.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that goes up and down (e.g. active sessions).
#[derive(Debug, Default)]
pub struct Gauge {
    val: AtomicU64,
}

impl Gauge {
    /// A standalone (unregistered) gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value when metrics are [`enabled`].
    #[inline(always)]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.val.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` when metrics are [`enabled`].
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.val.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Subtracts `n` (saturating at 0) when metrics are [`enabled`].
    /// Saturation keeps a gauge sane if the switch flips mid-flight and
    /// an `add` was skipped.
    #[inline(always)]
    pub fn sub(&self, n: u64) {
        if enabled() {
            let mut cur = self.val.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_sub(n);
                match self.val.compare_exchange_weak(
                    cur,
                    next,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one per power of two over the `u64`
/// range, so bucketing is a single `leading_zeros` and the footprint is
/// fixed at registration time.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index for a value: `floor(log2(v))`, with 0 and 1 sharing
/// bucket 0. Total order is preserved: `a <= b` implies
/// `bucket_index(a) <= bucket_index(b)`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i` (`0` for bucket 0, else `2^i`).
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << i
    }
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// A fixed-footprint streaming histogram over `u64` samples
/// (conventionally nanoseconds), log2-bucketed. All fields are relaxed
/// atomics: concurrent `record`s from any number of threads produce
/// exact `count`/`sum`/bucket totals.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }
}

impl Histogram {
    /// A standalone (unregistered) histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `v` when metrics are [`enabled`]; disabled path is one
    /// relaxed load and a branch.
    #[inline(always)]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.record(v);
        }
    }

    /// Records `v` unconditionally (caller-owned histograms, e.g. a
    /// load generator's latency series).
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Starts a timer that observes its elapsed nanoseconds on drop.
    /// When metrics are disabled at start the timer is inert — no
    /// `Instant::now()` is taken, keeping instrumentation sites inside
    /// the disabled-path budget.
    #[inline]
    pub fn start_timer(&self) -> HistTimer<'_> {
        HistTimer {
            hist: self,
            start: enabled().then(Instant::now),
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (b, cell) in buckets.iter_mut().zip(&self.buckets) {
            *b = cell.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// RAII timer from [`Histogram::start_timer`]: observes elapsed
/// nanoseconds on drop. Inert (and free) when metrics were disabled at
/// creation.
#[must_use = "a timer observes on drop; binding to _ drops it immediately"]
pub struct HistTimer<'a> {
    hist: &'a Histogram,
    start: Option<Instant>,
}

impl HistTimer<'_> {
    /// Discards the timer without recording (e.g. on an error path that
    /// should not pollute a latency series).
    pub fn cancel(mut self) {
        self.start = None;
    }
}

impl Drop for HistTimer<'_> {
    fn drop(&mut self) {
        if let Some(t0) = self.start.take() {
            // `record`, not `observe`: the cost is already paid and a
            // switch flip mid-span should not lose the sample.
            self.hist.record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (exact).
    pub sum: u64,
    /// Per-bucket sample counts (see [`bucket_lower`]/[`bucket_upper`]).
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl HistogramSnapshot {
    /// Element-wise `self - earlier` (saturating).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            ..HistogramSnapshot::default()
        };
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out
    }

    /// Bucket-wise merge of two snapshots (e.g. per-client histograms
    /// folded into one).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            ..HistogramSnapshot::default()
        };
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i] + other.buckets[i];
        }
        out
    }

    /// Arithmetic mean of the recorded samples (exact — `sum` is).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the bucket holding the target rank. The estimate lies in
    /// the same bucket as the true order statistic, so it is within a
    /// factor of 2 of it (and exact at the bucket edges).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based: the same convention as
        // indexing a sorted vector with `ceil(q * n)`.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let lo = bucket_lower(i) as f64;
                let hi = bucket_upper(i) as f64;
                // Position of the rank inside this bucket, in (0, 1].
                let within = (rank - seen) as f64 / n as f64;
                return lo + (hi - lo) * within;
            }
            seen += n;
        }
        bucket_upper(HIST_BUCKETS - 1) as f64
    }
}

// ---------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------

/// The value cell of one registered series.
#[derive(Debug)]
enum Cell {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// One registered time series: a metric name, a (possibly empty) sorted
/// label set, and its cell.
#[derive(Debug)]
struct Series {
    name: String,
    labels: Vec<(String, String)>,
    cell: Cell,
}

/// A set of named metrics. Registration (`counter`/`gauge`/`histogram`)
/// takes a mutex and is get-or-create on `(name, labels)` — call it
/// once per site and hold the returned `Arc`; recording through the
/// handle is lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<Vec<Series>>,
}

fn sorted_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry (the process normally uses [`global`]).
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert<T, F, G>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        pick: F,
        make: G,
    ) -> Arc<T>
    where
        F: Fn(&Cell) -> Option<Arc<T>>,
        G: FnOnce() -> Cell,
    {
        let labels = sorted_labels(labels);
        let mut series = self.series.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(s) = series.iter().find(|s| s.name == name && s.labels == labels) {
            return pick(&s.cell).unwrap_or_else(|| {
                panic!("metric {name:?} already registered with a different kind")
            });
        }
        let cell = make();
        let handle = pick(&cell).expect("freshly made cell matches its kind");
        series.push(Series {
            name: name.to_string(),
            labels,
            cell,
        });
        handle
    }

    /// The counter named `name` with `labels`, created on first use.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        self.get_or_insert(
            name,
            labels,
            |c| match c {
                Cell::Counter(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Cell::Counter(Arc::new(Counter::new())),
        )
    }

    /// The gauge named `name` with `labels`, created on first use.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        self.get_or_insert(
            name,
            labels,
            |c| match c {
                Cell::Gauge(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Cell::Gauge(Arc::new(Gauge::new())),
        )
    }

    /// The histogram named `name` with `labels`, created on first use.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        self.get_or_insert(
            name,
            labels,
            |c| match c {
                Cell::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
            || Cell::Histogram(Arc::new(Histogram::new())),
        )
    }

    /// A point-in-time copy of every registered series, sorted by
    /// `(name, labels)` for stable exposition.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self.series.lock().unwrap_or_else(|p| p.into_inner());
        let mut out: Vec<SeriesSnapshot> = series
            .iter()
            .map(|s| SeriesSnapshot {
                name: s.name.clone(),
                labels: s.labels.clone(),
                value: match &s.cell {
                    Cell::Counter(c) => ValueSnapshot::Counter(c.get()),
                    Cell::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                    Cell::Histogram(h) => ValueSnapshot::Histogram(h.snapshot()),
                },
            })
            .collect();
        out.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { series: out }
    }

    /// Zeroes every registered cell. Series stay registered (handles
    /// held by instrumentation sites remain live); test/run-boundary
    /// helper, pairing with [`crate::reset`].
    pub fn reset(&self) {
        let series = self.series.lock().unwrap_or_else(|p| p.into_inner());
        for s in series.iter() {
            match &s.cell {
                Cell::Counter(c) => c.val.store(0, Ordering::Relaxed),
                Cell::Gauge(g) => g.val.store(0, Ordering::Relaxed),
                Cell::Histogram(h) => {
                    h.count.store(0, Ordering::Relaxed);
                    h.sum.store(0, Ordering::Relaxed);
                    for b in &h.buckets {
                        b.store(0, Ordering::Relaxed);
                    }
                }
            }
        }
    }
}

/// The process-wide registry every serving-path instrumentation site
/// registers into; the admin endpoint exposes its snapshots.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// The snapshotted value of one series.
// Snapshots are built once per scrape and held in a short Vec; the
// 528-byte histogram variant is cheaper flat than behind a per-series
// allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum ValueSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge sample.
    Gauge(u64),
    /// Histogram state.
    Histogram(HistogramSnapshot),
}

/// One series in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesSnapshot {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: ValueSnapshot,
}

/// A point-in-time copy of a whole registry, sorted by `(name, labels)`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The snapshotted series.
    pub series: Vec<SeriesSnapshot>,
}

impl MetricsSnapshot {
    /// The series `(name, labels)`, if present.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&ValueSnapshot> {
        let labels = sorted_labels(labels);
        self.series
            .iter()
            .find(|s| s.name == name && s.labels == labels)
            .map(|s| &s.value)
    }

    /// Counter value of `(name, labels)`, or 0 when absent.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(ValueSnapshot::Counter(v)) | Some(ValueSnapshot::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram state of `(name, labels)`, if that series is one.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.get(name, labels) {
            Some(ValueSnapshot::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Per-series `self - earlier`: counters and histograms subtract
    /// (saturating), gauges keep the later sample. Series absent from
    /// `earlier` pass through unchanged.
    pub fn delta(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let series = self
            .series
            .iter()
            .map(|s| {
                let before = earlier
                    .series
                    .iter()
                    .find(|e| e.name == s.name && e.labels == s.labels);
                let value = match (&s.value, before.map(|b| &b.value)) {
                    (ValueSnapshot::Counter(v), Some(ValueSnapshot::Counter(b))) => {
                        ValueSnapshot::Counter(v.saturating_sub(*b))
                    }
                    (ValueSnapshot::Histogram(v), Some(ValueSnapshot::Histogram(b))) => {
                        ValueSnapshot::Histogram(v.delta(b))
                    }
                    (v, _) => v.clone(),
                };
                SeriesSnapshot {
                    name: s.name.clone(),
                    labels: s.labels.clone(),
                    value,
                }
            })
            .collect();
        MetricsSnapshot { series }
    }
}

// ---------------------------------------------------------------------
// Exposition encoders
// ---------------------------------------------------------------------

/// Escapes a label value per the Prometheus text format.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn format_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Renders a snapshot in the Prometheus text exposition format: one
/// `# TYPE` line per metric name, `name{labels} value` samples,
/// histograms as cumulative `_bucket{le="..."}` series (empty buckets
/// elided — cumulative counts lose nothing) plus `_sum` and `_count`.
pub fn encode_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for s in &snap.series {
        if last_name != Some(s.name.as_str()) {
            let kind = match s.value {
                ValueSnapshot::Counter(_) => "counter",
                ValueSnapshot::Gauge(_) => "gauge",
                ValueSnapshot::Histogram(_) => "histogram",
            };
            out.push_str(&format!("# TYPE {} {kind}\n", s.name));
            last_name = Some(s.name.as_str());
        }
        match &s.value {
            ValueSnapshot::Counter(v) | ValueSnapshot::Gauge(v) => {
                out.push_str(&format!(
                    "{}{} {v}\n",
                    s.name,
                    format_labels(&s.labels, None)
                ));
            }
            ValueSnapshot::Histogram(h) => {
                let mut cumulative = 0u64;
                for (i, &n) in h.buckets.iter().enumerate() {
                    if n == 0 {
                        continue;
                    }
                    cumulative += n;
                    let le = bucket_upper(i).to_string();
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        s.name,
                        format_labels(&s.labels, Some(("le", &le)))
                    ));
                }
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    s.name,
                    format_labels(&s.labels, Some(("le", "+Inf"))),
                    h.count
                ));
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    format_labels(&s.labels, None),
                    h.sum
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    format_labels(&s.labels, None),
                    h.count
                ));
            }
        }
    }
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a snapshot as a JSON document (`{"metrics": [...]}`), each
/// series with its name, labels, type, and value; histograms carry
/// per-bucket `le`/`count` pairs (empty buckets elided), `sum`,
/// `count`, and p50/p99/p999 estimates.
pub fn encode_json(snap: &MetricsSnapshot) -> String {
    let mut items = Vec::with_capacity(snap.series.len());
    for s in &snap.series {
        let labels = s
            .labels
            .iter()
            .map(|(k, v)| format!("{}: {}", json_string(k), json_string(v)))
            .collect::<Vec<_>>()
            .join(", ");
        let body = match &s.value {
            ValueSnapshot::Counter(v) => format!("\"type\": \"counter\", \"value\": {v}"),
            ValueSnapshot::Gauge(v) => format!("\"type\": \"gauge\", \"value\": {v}"),
            ValueSnapshot::Histogram(h) => {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter(|(_, &n)| n > 0)
                    .map(|(i, &n)| format!("{{\"le\": {}, \"count\": {n}}}", bucket_upper(i)))
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    "\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \
                     \"p50\": {:.1}, \"p99\": {:.1}, \"p999\": {:.1}, \"buckets\": [{buckets}]",
                    h.count,
                    h.sum,
                    h.quantile(0.50),
                    h.quantile(0.99),
                    h.quantile(0.999)
                )
            }
        };
        items.push(format!(
            "{{\"name\": {}, \"labels\": {{{labels}}}, {body}}}",
            json_string(&s.name)
        ));
    }
    format!("{{\"metrics\": [{}]}}\n", items.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Registry recording shares the process-global switch; serialize
    // the tests that toggle it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn bucket_boundaries_partition_u64() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_lower(i).max(1)), i);
            assert_eq!(bucket_index(bucket_upper(i)), i);
            assert!(bucket_lower(i) <= bucket_upper(i));
        }
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let _g = guard();
        disable();
        let reg = Registry::new();
        let c = reg.counter("c", &[]);
        let g = reg.gauge("g", &[]);
        let h = reg.histogram("h", &[]);
        c.inc(5);
        g.set(7);
        g.add(2);
        h.observe(100);
        let t = h.start_timer();
        drop(t);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        // The *_always paths bypass the switch.
        c.inc_always(3);
        h.record(9);
        assert_eq!(c.get(), 3);
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn registry_get_or_create_returns_same_cell() {
        let _g = guard();
        enable();
        let reg = Registry::new();
        let a = reg.counter("requests", &[("scheme", "spot")]);
        let b = reg.counter("requests", &[("scheme", "spot")]);
        let other = reg.counter("requests", &[("scheme", "cheetah")]);
        a.inc(2);
        b.inc(3);
        other.inc(10);
        assert_eq!(a.get(), 5);
        assert_eq!(reg.snapshot().counter("requests", &[("scheme", "spot")]), 5);
        assert_eq!(
            reg.snapshot().counter("requests", &[("scheme", "cheetah")]),
            10
        );
        disable();
    }

    #[test]
    fn snapshot_delta_semantics() {
        let _g = guard();
        enable();
        let reg = Registry::new();
        let c = reg.counter("c", &[]);
        let g = reg.gauge("g", &[]);
        let h = reg.histogram("h", &[]);
        c.inc(10);
        g.set(4);
        h.observe(100);
        let before = reg.snapshot();
        c.inc(7);
        g.set(2);
        h.observe(3000);
        h.observe(5);
        let after = reg.snapshot();
        disable();
        let d = after.delta(&before);
        assert_eq!(d.counter("c", &[]), 7);
        // Gauges keep the later sample.
        assert_eq!(d.counter("g", &[]), 2);
        let dh = d.histogram("h", &[]).expect("histogram");
        assert_eq!(dh.count, 2);
        assert_eq!(dh.sum, 3005);
        assert_eq!(dh.buckets[bucket_index(3000)], 1);
        assert_eq!(dh.buckets[bucket_index(5)], 1);
        assert_eq!(dh.buckets[bucket_index(100)], 0);
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 32, 64, 128, 256, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        let p50 = s.quantile(0.5);
        // Rank 5 is the value 16, bucket [16, 31].
        assert!((16.0..=31.0).contains(&p50), "p50 {p50}");
        let p100 = s.quantile(1.0);
        assert!((1024.0..=2047.0).contains(&p100), "p100 {p100}");
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0.0);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(100);
        b.record(100);
        b.record(1000);
        let merged = a.snapshot().merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 1210);
        assert_eq!(merged.buckets[bucket_index(100)], 2);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let _g = guard();
        enable();
        let reg = Registry::new();
        reg.counter("spot_sessions_served", &[]).inc(16);
        reg.gauge("spot_sessions_active", &[]).set(2);
        let h = reg.histogram("spot_conv_serve_ns", &[("scheme", "spot")]);
        h.observe(900);
        h.observe(1100);
        disable();
        let text = encode_prometheus(&reg.snapshot());
        assert!(text.contains("# TYPE spot_sessions_served counter\n"));
        assert!(text.contains("spot_sessions_served 16\n"));
        assert!(text.contains("spot_sessions_active 2\n"));
        assert!(text.contains("# TYPE spot_conv_serve_ns histogram\n"));
        assert!(text.contains("spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"1023\"} 1\n"));
        assert!(text.contains("spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"2047\"} 2\n"));
        assert!(text.contains("spot_conv_serve_ns_bucket{scheme=\"spot\",le=\"+Inf\"} 2\n"));
        assert!(text.contains("spot_conv_serve_ns_sum{scheme=\"spot\"} 2000\n"));
        assert!(text.contains("spot_conv_serve_ns_count{scheme=\"spot\"} 2\n"));
    }

    #[test]
    fn json_exposition_is_valid() {
        let _g = guard();
        enable();
        let reg = Registry::new();
        reg.counter("c", &[("weird", "a\"b\\c\nd")]).inc(1);
        reg.histogram("h", &[]).observe(42);
        disable();
        let json = encode_json(&reg.snapshot());
        crate::json::validate(&json).expect("metrics JSON validates");
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let _g = guard();
        enable();
        let reg = Registry::new();
        let c = reg.counter("c", &[]);
        c.inc(9);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.inc(4);
        assert_eq!(reg.snapshot().counter("c", &[]), 4);
        disable();
    }
}
