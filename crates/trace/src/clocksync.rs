//! NTP-style clock alignment between two trace clocks.
//!
//! The client and server record events on unrelated monotonic clocks
//! (each process's [`crate::trace_now_ns`] origin is its own first
//! call). To merge the two traces onto one timeline, the client runs a
//! short ping exchange at teardown: it sends a probe stamped with its
//! transmit time `t0`, the server echoes it back stamped with its
//! receive time `t1` and transmit time `t2`, and the client stamps the
//! reply's arrival `t3`. The classic midpoint estimate
//!
//! ```text
//! offset = ((t1 - t0) + (t2 - t3)) / 2        (server − client)
//! rtt    = (t3 - t0) - (t2 - t1)
//! ```
//!
//! is exact when the forward and return network delays are equal; an
//! asymmetry of `a` nanoseconds biases the estimate by `a/2`, so the
//! error is bounded by `rtt/2` regardless of how the delay splits.
//! Repeating the exchange [`PROBE_ROUNDS`] times and keeping the
//! minimum-RTT sample minimizes that bound — the sample that crossed
//! the wire fastest had the least room for asymmetric queueing.

use crate::{gauge, Cat};

/// Number of ping rounds a probing client runs. Loopback RTTs are tens
/// of microseconds; eight rounds cost well under a millisecond and give
/// the minimum-RTT filter enough samples to dodge scheduler noise.
pub const PROBE_ROUNDS: u32 = 8;

/// One completed ping exchange, all stamps in nanoseconds: `t0`/`t3`
/// on the client clock, `t1`/`t2` on the server clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PingSample {
    /// Client transmit time of the probe.
    pub t0: u64,
    /// Server receive time of the probe.
    pub t1: u64,
    /// Server transmit time of the echo.
    pub t2: u64,
    /// Client receive time of the echo.
    pub t3: u64,
}

impl PingSample {
    /// Midpoint offset estimate (server clock − client clock), signed.
    pub fn offset_ns(&self) -> i64 {
        // i128 intermediates: the two clocks share no origin, so the
        // raw differences can individually overflow i64.
        let fwd = self.t1 as i128 - self.t0 as i128;
        let back = self.t2 as i128 - self.t3 as i128;
        ((fwd + back) / 2) as i64
    }

    /// Round-trip time excluding the server's turnaround.
    pub fn rtt_ns(&self) -> u64 {
        let total = self.t3 as i128 - self.t0 as i128;
        let turnaround = self.t2 as i128 - self.t1 as i128;
        (total - turnaround).max(0) as u64
    }
}

/// The selected clock alignment: offset from the minimum-RTT sample,
/// with its RTT-bounded error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockEstimate {
    /// Server clock − client clock, nanoseconds.
    pub offset_ns: i64,
    /// RTT of the winning sample.
    pub rtt_ns: u64,
    /// Error bound on `offset_ns`: half the winning RTT.
    pub err_ns: u64,
    /// Number of samples the estimate was selected from.
    pub samples: u32,
}

impl ClockEstimate {
    /// Maps a server-clock timestamp onto the client clock.
    pub fn server_to_client_ns(&self, server_ns: u64) -> u64 {
        let v = server_ns as i128 - self.offset_ns as i128;
        v.clamp(0, u64::MAX as i128) as u64
    }
}

/// Picks the minimum-RTT sample from `samples` and returns its midpoint
/// offset with the `rtt/2` error bound. `None` when no samples arrived
/// (probing is best-effort; a merge without an estimate falls back to
/// uncorrected clocks).
pub fn estimate(samples: &[PingSample]) -> Option<ClockEstimate> {
    let best = samples.iter().min_by_key(|s| s.rtt_ns())?;
    let rtt = best.rtt_ns();
    Some(ClockEstimate {
        offset_ns: best.offset_ns(),
        rtt_ns: rtt,
        err_ns: rtt / 2,
        samples: samples.len() as u32,
    })
}

/// Runs `rounds` ping exchanges through `exchange` — a closure that
/// sends a probe and returns the server's `(t1, t2)` stamps — stamping
/// `t0`/`t3` on the local trace clock, then selects the best sample.
/// A failed exchange aborts probing and returns whatever was gathered
/// so far (possibly `None`): clock sync must never fail a session.
pub fn run_probe<E>(rounds: u32, mut exchange: E) -> Option<ClockEstimate>
where
    E: FnMut(u32) -> Option<(u64, u64)>,
{
    let mut samples = Vec::with_capacity(rounds as usize);
    for seq in 0..rounds {
        let t0 = crate::trace_now_ns();
        let Some((t1, t2)) = exchange(seq) else { break };
        let t3 = crate::trace_now_ns();
        samples.push(PingSample { t0, t1, t2, t3 });
    }
    estimate(&samples)
}

/// Records an estimate into the local trace as gauges, sign-split so
/// the u64 gauge slots never hold two's-complement values:
/// `clock_offset_fwd_ns` when the server clock is ahead,
/// `clock_offset_back_ns` when behind, plus `clock_rtt_ns` and
/// `clock_err_ns`. The merge tool reads these back from the client
/// export.
pub fn record(est: &ClockEstimate) {
    if est.offset_ns >= 0 {
        gauge(Cat::Net, "clock_offset_fwd_ns", est.offset_ns as u64);
    } else {
        gauge(
            Cat::Net,
            "clock_offset_back_ns",
            est.offset_ns.unsigned_abs(),
        );
    }
    gauge(Cat::Net, "clock_rtt_ns", est.rtt_ns);
    gauge(Cat::Net, "clock_err_ns", est.err_ns);
}

/// Reconstructs a [`ClockEstimate`] from the gauges written by
/// [`record`], as found in an exported trace.
pub fn from_gauges(
    offset_fwd: Option<u64>,
    offset_back: Option<u64>,
    rtt_ns: Option<u64>,
    err_ns: Option<u64>,
) -> Option<ClockEstimate> {
    let offset_ns = match (offset_fwd, offset_back) {
        (Some(f), _) => f as i64,
        (None, Some(b)) => -(b as i64),
        (None, None) => return None,
    };
    Some(ClockEstimate {
        offset_ns,
        rtt_ns: rtt_ns.unwrap_or(0),
        err_ns: err_ns.unwrap_or(0),
        samples: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulates one exchange between a client clock and a server clock
    /// offset by `offset` ns, with one-way delays `fwd`/`back`.
    fn sample(t0: u64, offset: i64, fwd: u64, back: u64, turnaround: u64) -> PingSample {
        let client_to_server = |c: u64| (c as i128 + offset as i128) as u64;
        let t1 = client_to_server(t0 + fwd);
        let t2 = t1 + turnaround;
        let t3 = t0 + fwd + turnaround + back;
        PingSample { t0, t1, t2, t3 }
    }

    #[test]
    fn symmetric_delay_recovers_offset_exactly() {
        for &offset in &[0i64, 5_000, -123_456, 40_000_000_000] {
            let s = sample(1_000_000, offset, 700, 700, 50);
            assert_eq!(s.offset_ns(), offset, "offset {offset}");
            assert_eq!(s.rtt_ns(), 1_400);
        }
    }

    #[test]
    fn asymmetric_delay_error_bounded_by_half_rtt() {
        // Worst-case asymmetry: all delay on one leg.
        for &(fwd, back) in &[(2_000u64, 0u64), (0, 2_000), (1_500, 500), (10, 1_990)] {
            let true_offset = 9_000_000i64;
            let s = sample(500_000, true_offset, fwd, back, 100);
            let err = (s.offset_ns() - true_offset).unsigned_abs();
            let rtt = s.rtt_ns();
            assert_eq!(rtt, fwd + back);
            assert!(
                err <= rtt / 2,
                "fwd={fwd} back={back}: err {err} > rtt/2 {}",
                rtt / 2
            );
        }
    }

    #[test]
    fn min_rtt_sample_wins() {
        let offset = -2_000_000i64;
        let samples = vec![
            sample(0, offset, 5_000, 1_000, 10),       // rtt 6000, skewed
            sample(100_000, offset, 400, 400, 10),     // rtt 800, clean
            sample(200_000, offset, 3_000, 3_000, 10), // rtt 6000
        ];
        let est = estimate(&samples).expect("samples present");
        assert_eq!(est.rtt_ns, 800);
        assert_eq!(est.err_ns, 400);
        assert_eq!(est.samples, 3);
        // The clean sample is symmetric, so the offset is exact.
        assert_eq!(est.offset_ns, offset);
        let mapped = est.server_to_client_ns(10_000_000);
        assert_eq!(mapped, (10_000_000i64 - offset) as u64);
    }

    #[test]
    fn skewed_rounds_still_select_within_bound() {
        // Progressive skew: each round's asymmetry differs; the bound
        // must hold for whichever round wins.
        let true_offset = 77_777i64;
        let samples: Vec<PingSample> = (0..8)
            .map(|i| {
                let fwd = 300 + i * 211;
                let back = 300 + (7 - i) * 173;
                sample(i * 50_000, true_offset, fwd, back, 20)
            })
            .collect();
        let est = estimate(&samples).expect("samples present");
        let err = (est.offset_ns - true_offset).unsigned_abs();
        assert!(err <= est.err_ns, "err {err} > bound {}", est.err_ns);
    }

    #[test]
    fn empty_and_aborted_probes_yield_none() {
        assert_eq!(estimate(&[]), None);
        let est = run_probe(4, |_| None);
        assert_eq!(est, None);
    }

    #[test]
    fn run_probe_collects_partial_rounds() {
        // Exchange succeeds twice then fails: estimate from 2 samples.
        let mut calls = 0u32;
        let est = run_probe(8, |seq| {
            calls += 1;
            if seq < 2 {
                let now = crate::trace_now_ns();
                Some((now, now + 10))
            } else {
                None
            }
        });
        assert_eq!(calls, 3);
        let est = est.expect("two good rounds");
        assert_eq!(est.samples, 2);
        assert!(est.err_ns <= est.rtt_ns);
    }

    #[test]
    fn gauge_roundtrip_preserves_sign() {
        let fwd = ClockEstimate {
            offset_ns: 123,
            rtt_ns: 400,
            err_ns: 200,
            samples: 8,
        };
        let got = from_gauges(Some(123), None, Some(400), Some(200)).expect("fwd");
        assert_eq!(got.offset_ns, fwd.offset_ns);
        assert_eq!(got.rtt_ns, 400);
        let back = from_gauges(None, Some(999), None, None).expect("back");
        assert_eq!(back.offset_ns, -999);
        assert_eq!(from_gauges(None, None, Some(1), Some(1)), None);
    }
}
