//! Minimal JSON validator and reader.
//!
//! A recursive-descent checker for RFC 8259 JSON, used to assert that
//! the Chrome-trace exporter emits well-formed output without pulling a
//! serde stack into the workspace. [`validate`] checks structure only —
//! no DOM is built, so validating a multi-megabyte trace costs one pass
//! and no allocation beyond the recursion stack. [`parse`] builds a
//! [`Value`] DOM for the readers that must consume exported traces
//! back (the cross-party trace merge).

/// Validates that `input` is a single well-formed JSON value.
///
/// Returns `Err` with a byte offset and a short description of the
/// first problem found.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return fail(*pos, "nesting too deep");
    }
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => array(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-') | Some(b'0'..=b'9') => number(bytes, pos),
        Some(_) => fail(*pos, "unexpected character"),
        None => fail(*pos, "unexpected end of input"),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, expect: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(expect) {
        *pos += expect.len();
        Ok(())
    } else {
        fail(*pos, "invalid literal")
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected object key string");
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':' after object key");
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}' in object"),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']' in array"),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => return fail(*pos, "invalid \\u escape"),
                            }
                        }
                    }
                    _ => return fail(*pos, "invalid escape"),
                }
            }
            0x00..=0x1f => return fail(*pos, "unescaped control character in string"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return fail(*pos, "invalid number"),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return fail(*pos, "digit required after decimal point");
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return fail(*pos, "digit required in exponent");
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// DOM parser
// ---------------------------------------------------------------------

/// A parsed JSON value. Objects keep insertion order (a `Vec` of
/// pairs): trace files are small-keyed and read once, so a map would
/// buy nothing.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string, escapes resolved.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in source order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Member `key` of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses `input` as a single JSON value.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = p_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn p_fail<T>(pos: usize, what: &str) -> Result<T, String> {
    Err(format!("{what} at byte {pos}"))
}

fn p_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    if depth > MAX_DEPTH {
        return p_fail(*pos, "nesting too deep");
    }
    match bytes.get(*pos) {
        Some(b'{') => p_object(bytes, pos, depth),
        Some(b'[') => p_array(bytes, pos, depth),
        Some(b'"') => p_string(bytes, pos).map(Value::String),
        Some(b't') => literal(bytes, pos, b"true").map(|()| Value::Bool(true)),
        Some(b'f') => literal(bytes, pos, b"false").map(|()| Value::Bool(false)),
        Some(b'n') => literal(bytes, pos, b"null").map(|()| Value::Null),
        Some(b'-') | Some(b'0'..=b'9') => p_number(bytes, pos),
        Some(_) => p_fail(*pos, "unexpected character"),
        None => p_fail(*pos, "unexpected end of input"),
    }
}

fn p_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1;
    skip_ws(bytes, pos);
    let mut members = Vec::new();
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return p_fail(*pos, "expected object key string");
        }
        let key = p_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return p_fail(*pos, "expected ':' after object key");
        }
        *pos += 1;
        skip_ws(bytes, pos);
        let v = p_value(bytes, pos, depth + 1)?;
        members.push((key, v));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            _ => return p_fail(*pos, "expected ',' or '}' in object"),
        }
    }
}

fn p_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Value, String> {
    *pos += 1;
    skip_ws(bytes, pos);
    let mut items = Vec::new();
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        skip_ws(bytes, pos);
        items.push(p_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return p_fail(*pos, "expected ',' or ']' in array"),
        }
    }
}

fn p_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    let start = *pos;
    string(bytes, pos)?; // syntax (and bounds) already proven here
    let raw = &bytes[start + 1..*pos - 1];
    let mut out = String::with_capacity(raw.len());
    let mut i = 0usize;
    while i < raw.len() {
        if raw[i] != b'\\' {
            // Copy a maximal escape-free run as UTF-8 (input is &str).
            let run = i + raw[i..].iter().take_while(|&&b| b != b'\\').count();
            out.push_str(std::str::from_utf8(&raw[i..run]).map_err(|e| e.to_string())?);
            i = run;
            continue;
        }
        i += 1;
        match raw[i] {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hex = std::str::from_utf8(&raw[i + 1..i + 5]).map_err(|e| e.to_string())?;
                let cp = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                i += 4;
                let ch = if (0xD800..0xDC00).contains(&cp) {
                    // High surrogate: require the paired \uXXXX low half.
                    if raw.get(i + 1..i + 3) != Some(b"\\u") {
                        return p_fail(start, "unpaired surrogate");
                    }
                    let hex2 =
                        std::str::from_utf8(&raw[i + 3..i + 7]).map_err(|e| e.to_string())?;
                    let lo = u32::from_str_radix(hex2, 16).map_err(|e| e.to_string())?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return p_fail(start, "unpaired surrogate");
                    }
                    i += 6;
                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    cp
                };
                out.push(char::from_u32(ch).ok_or_else(|| "invalid codepoint".to_string())?);
            }
            _ => unreachable!("escape validated by string()"),
        }
        i += 1;
    }
    Ok(out)
}

fn p_number(bytes: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    number(bytes, pos)?;
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|e| format!("{e} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "[]",
            "{}",
            "[1, 2.5, -3e4, \"x\", {\"k\": [false]}]",
            "  {\"a\": {\"b\": \"\\u00e9\\n\"}}  ",
            "0.125",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] trailing",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "{a: 1}",
            "\"bad \u{1}\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} accepted");
        }
    }

    #[test]
    fn rejects_overdeep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
    }

    #[test]
    fn parse_builds_dom() {
        use super::{parse, Value};
        let doc = r#"{"name": "x\né", "ts": 1.5, "neg": -2e3, "ok": true,
                      "none": null, "items": [1, "two", {"k": 3}]}"#;
        let v = parse(doc).expect("parse");
        assert_eq!(v.get("name").and_then(Value::as_str), Some("x\né"));
        assert_eq!(v.get("ts").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("neg").and_then(Value::as_f64), Some(-2000.0));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        assert_eq!(v.get("none"), Some(&Value::Null));
        let items = v.get("items").and_then(Value::as_array).expect("array");
        assert_eq!(items.len(), 3);
        assert_eq!(items[2].get("k").and_then(Value::as_f64), Some(3.0));
        // Surrogate pair.
        let emoji = parse(r#""\ud83d\ude00""#).expect("surrogates");
        assert_eq!(emoji.as_str(), Some("😀"));
        assert!(parse(r#""\ud83d""#).is_err(), "unpaired surrogate accepted");
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\": 1} x").is_err());
    }
}
