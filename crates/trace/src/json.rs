//! Minimal JSON validator.
//!
//! A recursive-descent checker for RFC 8259 JSON, used to assert that
//! the Chrome-trace exporter emits well-formed output without pulling a
//! serde stack into the workspace. It validates structure only — no DOM
//! is built, so validating a multi-megabyte trace costs one pass and no
//! allocation beyond the recursion stack.

/// Validates that `input` is a single well-formed JSON value.
///
/// Returns `Err` with a byte offset and a short description of the
/// first problem found.
pub fn validate(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn fail(pos: usize, what: &str) -> Result<(), String> {
    Err(format!("{what} at byte {pos}"))
}

fn value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    if depth > MAX_DEPTH {
        return fail(*pos, "nesting too deep");
    }
    match bytes.get(*pos) {
        Some(b'{') => object(bytes, pos, depth),
        Some(b'[') => array(bytes, pos, depth),
        Some(b'"') => string(bytes, pos),
        Some(b't') => literal(bytes, pos, b"true"),
        Some(b'f') => literal(bytes, pos, b"false"),
        Some(b'n') => literal(bytes, pos, b"null"),
        Some(b'-') | Some(b'0'..=b'9') => number(bytes, pos),
        Some(_) => fail(*pos, "unexpected character"),
        None => fail(*pos, "unexpected end of input"),
    }
}

fn literal(bytes: &[u8], pos: &mut usize, expect: &[u8]) -> Result<(), String> {
    if bytes[*pos..].starts_with(expect) {
        *pos += expect.len();
        Ok(())
    } else {
        fail(*pos, "invalid literal")
    }
}

fn object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '{'
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return fail(*pos, "expected object key string");
        }
        string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return fail(*pos, "expected ':' after object key");
        }
        *pos += 1;
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or '}' in object"),
        }
    }
}

fn array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<(), String> {
    *pos += 1; // consume '['
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(bytes, pos);
        value(bytes, pos, depth + 1)?;
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return fail(*pos, "expected ',' or ']' in array"),
        }
    }
}

fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // consume opening quote
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            match bytes.get(*pos) {
                                Some(c) if c.is_ascii_hexdigit() => *pos += 1,
                                _ => return fail(*pos, "invalid \\u escape"),
                            }
                        }
                    }
                    _ => return fail(*pos, "invalid escape"),
                }
            }
            0x00..=0x1f => return fail(*pos, "unescaped control character in string"),
            _ => *pos += 1,
        }
    }
    fail(*pos, "unterminated string")
}

fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    match bytes.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return fail(*pos, "invalid number"),
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return fail(*pos, "digit required after decimal point");
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            return fail(*pos, "digit required in exponent");
        }
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::validate;

    #[test]
    fn accepts_valid_documents() {
        for doc in [
            "null",
            "true",
            "[]",
            "{}",
            "[1, 2.5, -3e4, \"x\", {\"k\": [false]}]",
            "  {\"a\": {\"b\": \"\\u00e9\\n\"}}  ",
            "0.125",
        ] {
            validate(doc).unwrap_or_else(|e| panic!("{doc:?} rejected: {e}"));
        }
    }

    #[test]
    fn rejects_invalid_documents() {
        for doc in [
            "",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "[1] trailing",
            "\"unterminated",
            "01",
            "1.",
            "nul",
            "{a: 1}",
            "\"bad \u{1}\"",
        ] {
            assert!(validate(doc).is_err(), "{doc:?} accepted");
        }
    }

    #[test]
    fn rejects_overdeep_nesting() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(validate(&deep).is_err());
    }
}
