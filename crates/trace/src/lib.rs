//! # spot-trace — unified tracing & metrics for the SPOT pipeline
//!
//! One instrumentation substrate for the whole workspace, replacing the
//! ad-hoc telemetry that used to live in four places (`OpCounts`
//! callbacks, `TrafficStats`, the `StreamEvent` Gantt buffers, and the
//! stall tables): lightweight **spans** and **instants** with monotonic
//! timestamps and explicit span/parent/thread ids, typed **counters**
//! (HE ops, pool hits, wire bytes) and **gauges** (queue depth), and
//! two exporters — a [Chrome-trace-format] JSON loadable in
//! `chrome://tracing` / [Perfetto], and a plain-text summary.
//!
//! ## Cost model
//!
//! Tracing is **off by default** and the disabled path is a single
//! relaxed atomic load plus a branch — a few nanoseconds, no allocation,
//! no `Instant::now()` — so instrumentation sites can stay compiled into
//! release builds (verified by the `trace_overhead` bench in
//! `spot-bench`). When enabled, events are recorded into thread-local
//! buffers that flush into a global sink when full and when the thread
//! exits; the global lock is taken only at flush, never per event.
//!
//! ## Collection contract
//!
//! [`take_events`] flushes the *calling* thread and drains the sink.
//! Worker threads flush automatically on exit, so the intended pattern
//! is: enable, run (scoped worker threads join before the scope ends),
//! then collect on the coordinating thread. Threads that are still
//! alive and have not filled their buffer retain their tail until they
//! exit or their owner calls [`flush_thread`].
//!
//! [Chrome-trace-format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

#![warn(missing_docs)]

pub mod chrome;
pub mod clocksync;
pub mod correlate;
pub mod json;
pub mod log;
pub mod metrics;
pub mod summary;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Global switch and clock
// ---------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether tracing is currently on. This is the disabled-path hot
/// check: one relaxed load.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on (idempotent). The first call fixes the trace
/// origin; all timestamps are nanoseconds since that instant.
pub fn enable() {
    origin();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing off. Already-buffered events are kept until drained.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

fn origin() -> Instant {
    static ORIGIN: OnceLock<Instant> = OnceLock::new();
    *ORIGIN.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    origin().elapsed().as_nanos() as u64
}

/// Nanoseconds since the trace origin, on the same clock every event
/// timestamp uses. Public so protocol code can stamp wire messages
/// (clock-sync probes) with values directly comparable to span times.
/// The first call fixes the origin if [`enable`] has not run yet.
#[inline]
pub fn trace_now_ns() -> u64 {
    now_ns()
}

// ---------------------------------------------------------------------
// Wire trace context
// ---------------------------------------------------------------------

/// Separate switch for *wire-visible* trace context (trace ids in Setup
/// frames, clock-sync probes). Kept independent of [`enabled`] so that
/// merely buffering events in-process (unit tests, the overhead bench)
/// never changes the byte stream a transport emits; binaries that
/// export traces opt in via [`enable_wire_context`].
static WIRE_CONTEXT: AtomicBool = AtomicBool::new(false);

static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// Turns on wire-visible trace context (idempotent). Implies [`enable`].
pub fn enable_wire_context() {
    enable();
    WIRE_CONTEXT.store(true, Ordering::SeqCst);
}

/// Turns off wire-visible trace context.
pub fn disable_wire_context() {
    WIRE_CONTEXT.store(false, Ordering::SeqCst);
}

/// Whether wire-visible trace context is on.
#[inline]
pub fn wire_context_enabled() -> bool {
    WIRE_CONTEXT.load(Ordering::Relaxed)
}

/// Allocates a wire trace id: 0 while wire context is off (the encoder
/// emits the legacy frame layout for 0), otherwise a process-unique
/// nonzero value — the process id in the high 32 bits, a monotonic
/// counter in the low 32. No rng involved, so allocating ids never
/// perturbs the deterministic protocol transcripts.
pub fn next_wire_trace_id() -> u64 {
    if !wire_context_enabled() {
        return 0;
    }
    let seq = NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
    ((std::process::id() as u64) << 32) | seq
}

// ---------------------------------------------------------------------
// Event model
// ---------------------------------------------------------------------

/// Event category — the subsystem that emitted it (one Chrome-trace
/// `cat` per variant, also used to group the text summary).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cat {
    /// Client-side protocol work (packing, encryption, share assembly).
    Client,
    /// Server-side protocol work (convolution, masking).
    Server,
    /// Streaming runtime (queue stages, worker idle/busy).
    Stream,
    /// Wire transports (frame send/recv).
    Net,
    /// HE primitive layer.
    He,
    /// Session / layer state machines.
    Session,
    /// Application drivers and binaries.
    App,
}

impl Cat {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Cat::Client => "client",
            Cat::Server => "server",
            Cat::Stream => "stream",
            Cat::Net => "net",
            Cat::He => "he",
            Cat::Session => "session",
            Cat::App => "app",
        }
    }

    /// Inverse of [`Cat::name`], for re-importing exported traces.
    pub fn from_name(s: &str) -> Option<Cat> {
        Some(match s {
            "client" => Cat::Client,
            "server" => Cat::Server,
            "stream" => Cat::Stream,
            "net" => Cat::Net,
            "he" => Cat::He,
            "session" => Cat::Session,
            "app" => Cat::App,
            _ => return None,
        })
    }
}

/// An event name: `'static` on hot paths, owned for per-item labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Name {
    /// A static label (no allocation).
    Static(&'static str),
    /// A dynamically built label (allocated only while tracing is on).
    Owned(String),
}

impl Name {
    /// The label text.
    pub fn as_str(&self) -> &str {
        match self {
            Name::Static(s) => s,
            Name::Owned(s) => s,
        }
    }
}

/// What kind of event this is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A timed span; `ts_ns` is the start, `dur_ns` the length.
    Span {
        /// Span duration in nanoseconds.
        dur_ns: u64,
    },
    /// A zero-duration marker.
    Instant,
    /// A sampled gauge value (e.g. queue depth).
    Gauge {
        /// The sampled value.
        value: u64,
    },
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Label.
    pub name: Name,
    /// Emitting subsystem.
    pub cat: Cat,
    /// Nanoseconds since the trace origin.
    pub ts_ns: u64,
    /// Recording thread (dense ids assigned in first-use order).
    pub tid: u32,
    /// Span id (0 for instants and gauges).
    pub id: u32,
    /// Enclosing span id on the same thread at entry (0 = root).
    pub parent: u32,
    /// Optional numeric payload (e.g. `("bytes", 12_345)`).
    pub arg: Option<(&'static str, u64)>,
    /// Second payload slot (e.g. a `("flow", tag)` causal tag alongside
    /// the byte count on a wire span).
    pub arg2: Option<(&'static str, u64)>,
    /// Event kind.
    pub phase: Phase,
}

impl Event {
    /// Span end in nanoseconds (== `ts_ns` for non-spans).
    pub fn end_ns(&self) -> u64 {
        match self.phase {
            Phase::Span { dur_ns } => self.ts_ns + dur_ns,
            _ => self.ts_ns,
        }
    }
}

// ---------------------------------------------------------------------
// Thread-local buffers and the global sink
// ---------------------------------------------------------------------

const FLUSH_AT: usize = 4096;

static SINK: Mutex<Vec<Event>> = Mutex::new(Vec::new());
static THREAD_NAMES: Mutex<Vec<(u32, String)>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU32 = AtomicU32::new(1);
static NEXT_SPAN_ID: AtomicU32 = AtomicU32::new(1);

struct ThreadBuf {
    tid: u32,
    buf: Vec<Event>,
    stack: Vec<u32>,
}

impl ThreadBuf {
    fn new() -> Self {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let name = std::thread::current()
            .name()
            .map(str::to_string)
            .unwrap_or_else(|| format!("thread-{tid}"));
        if let Ok(mut names) = THREAD_NAMES.lock() {
            names.push((tid, name));
        }
        Self {
            tid,
            buf: Vec::new(),
            stack: Vec::new(),
        }
    }

    fn push(&mut self, ev: Event) {
        self.buf.push(ev);
        if self.buf.len() >= FLUSH_AT {
            self.flush();
        }
    }

    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if let Ok(mut sink) = SINK.lock() {
            sink.append(&mut self.buf);
        } else {
            self.buf.clear();
        }
    }
}

impl Drop for ThreadBuf {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static TLS: RefCell<ThreadBuf> = RefCell::new(ThreadBuf::new());
}

fn with_tls<R>(f: impl FnOnce(&mut ThreadBuf) -> R) -> Option<R> {
    TLS.try_with(|t| f(&mut t.borrow_mut())).ok()
}

/// Overrides the current thread's display name in exports (worker
/// lanes call this with e.g. `server-0`). No-op while disabled.
pub fn set_thread_label(label: impl Into<String>) {
    if !enabled() {
        return;
    }
    let label = label.into();
    with_tls(|t| {
        if let Ok(mut names) = THREAD_NAMES.lock() {
            match names.iter_mut().find(|(tid, _)| *tid == t.tid) {
                Some(entry) => entry.1 = label,
                None => names.push((t.tid, label)),
            }
        }
    });
}

/// Flushes the calling thread's buffered events into the global sink.
pub fn flush_thread() {
    with_tls(|t| t.flush());
}

/// Flushes the calling thread, then drains every flushed event from the
/// global sink, sorted by start timestamp. Threads still alive keep
/// their unflushed tail (see the module docs for the collection
/// contract).
pub fn take_events() -> Vec<Event> {
    flush_thread();
    let mut events = SINK
        .lock()
        .map(|mut sink| std::mem::take(&mut *sink))
        .unwrap_or_default();
    events.sort_by_key(|e| (e.ts_ns, e.id));
    events
}

/// Registered `(tid, name)` pairs, for exporters.
pub fn thread_names() -> Vec<(u32, String)> {
    THREAD_NAMES.lock().map(|n| n.clone()).unwrap_or_default()
}

/// Clears buffered events on the calling thread and in the sink, and
/// zeroes every counter. Test/run-boundary helper; other threads'
/// unflushed buffers are untouched.
pub fn reset() {
    with_tls(|t| t.buf.clear());
    if let Ok(mut sink) = SINK.lock() {
        sink.clear();
    }
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------
// Spans and instants
// ---------------------------------------------------------------------

/// RAII span guard: records one [`Phase::Span`] event on drop. Obtain
/// via [`span`] / [`span_owned`]; a guard created while tracing is
/// disabled is inert (zero-cost drop).
#[must_use = "a span records on drop; binding to _ drops it immediately"]
pub struct Span {
    // None = tracing was disabled at entry; fully inert.
    live: Option<SpanLive>,
}

struct SpanLive {
    name: Name,
    cat: Cat,
    start_ns: u64,
    id: u32,
    parent: u32,
    arg: Option<(&'static str, u64)>,
    arg2: Option<(&'static str, u64)>,
}

fn enter(cat: Cat, name: Name) -> Span {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = with_tls(|t| {
        let parent = t.stack.last().copied().unwrap_or(0);
        t.stack.push(id);
        parent
    })
    .unwrap_or(0);
    Span {
        live: Some(SpanLive {
            name,
            cat,
            start_ns: now_ns(),
            id,
            parent,
            arg: None,
            arg2: None,
        }),
    }
}

/// Opens a span with a static label. Disabled path: one atomic load.
#[inline]
pub fn span(cat: Cat, name: &'static str) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    enter(cat, Name::Static(name))
}

/// Opens a span whose label is built by `f` — the closure runs (and
/// allocates) only while tracing is enabled.
#[inline]
pub fn span_owned<F: FnOnce() -> String>(cat: Cat, f: F) -> Span {
    if !enabled() {
        return Span { live: None };
    }
    enter(cat, Name::Owned(f()))
}

impl Span {
    /// Attaches a numeric payload exported under `args`. Two slots are
    /// available; the first free one is filled (further calls replace
    /// the second slot).
    pub fn arg(mut self, key: &'static str, value: u64) -> Span {
        if let Some(live) = &mut self.live {
            if live.arg.is_none() {
                live.arg = Some((key, value));
            } else {
                live.arg2 = Some((key, value));
            }
        }
        self
    }

    /// This span's id (0 when tracing was disabled at entry).
    pub fn id(&self) -> u32 {
        self.live.as_ref().map_or(0, |l| l.id)
    }

    /// Discards the span without recording it (the nesting stack is
    /// still unwound). For conditionally-interesting spans, e.g. a
    /// "blocked" window that turned out to be zero-length.
    pub fn cancel(mut self) {
        let Some(live) = self.live.take() else { return };
        with_tls(|t| {
            if let Some(pos) = t.stack.iter().rposition(|&id| id == live.id) {
                t.stack.truncate(pos);
            }
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else { return };
        let dur_ns = now_ns().saturating_sub(live.start_ns);
        with_tls(|t| {
            // Guards are scoped, so the top of the stack is this span;
            // tolerate misuse by searching downward.
            if let Some(pos) = t.stack.iter().rposition(|&id| id == live.id) {
                t.stack.truncate(pos);
            }
            t.push(Event {
                name: live.name,
                cat: live.cat,
                ts_ns: live.start_ns,
                tid: t.tid,
                id: live.id,
                parent: live.parent,
                arg: live.arg,
                arg2: live.arg2,
                phase: Phase::Span { dur_ns },
            });
        });
    }
}

fn record_leaf(cat: Cat, name: Name, arg: Option<(&'static str, u64)>, phase: Phase) {
    let ts_ns = now_ns();
    with_tls(|t| {
        // Gauges are process-scoped samples, not span-local work: they
        // carry no parent link, so a sample taken inside a span that is
        // later cancelled (e.g. a not-actually-blocked wait span) can
        // never leave a dangling reference.
        let parent = if matches!(phase, Phase::Gauge { .. }) {
            0
        } else {
            t.stack.last().copied().unwrap_or(0)
        };
        t.push(Event {
            name,
            cat,
            ts_ns,
            tid: t.tid,
            id: 0,
            parent,
            arg,
            arg2: None,
            phase,
        });
    });
}

/// Records a zero-duration marker. Disabled path: one atomic load.
#[inline]
pub fn instant(cat: Cat, name: &'static str) {
    if !enabled() {
        return;
    }
    record_leaf(cat, Name::Static(name), None, Phase::Instant);
}

/// Samples a gauge (e.g. queue depth) into the trace timeline.
/// Disabled path: one atomic load.
#[inline]
pub fn gauge(cat: Cat, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    record_leaf(cat, Name::Static(name), None, Phase::Gauge { value });
}

// ---------------------------------------------------------------------
// Typed counters
// ---------------------------------------------------------------------

/// The process-wide typed counters. Monotonic relaxed atomics; snapshot
/// with [`counters`] and attribute per layer/session via
/// [`CounterSnapshot::delta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Counter {
    /// Polynomial forward NTT conversions (one per `Poly::to_ntt`).
    NttFwd,
    /// Polynomial inverse NTT conversions (one per `Poly::to_coeff`).
    NttInv,
    /// Slot rotations (Galois automorphism + key switch).
    Rotate,
    /// RNS key-switch invocations.
    KeySwitch,
    /// Ciphertext modulus switches.
    ModSwitch,
    /// Encryptions.
    Encrypt,
    /// Decryptions.
    Decrypt,
    /// Ciphertext additions (ct+ct and ct±plain).
    AddOps,
    /// Ciphertext–plaintext multiplications.
    MultPlain,
    /// Residue-buffer pool takes served from the free list.
    PoolHit,
    /// Residue-buffer pool takes that hit the allocator.
    PoolMiss,
    /// Buffers returned to the pool free list.
    PoolRecycled,
    /// Buffers dropped because the pool was at capacity.
    PoolDropped,
    /// Items pushed into streaming queues.
    QueuePushed,
    /// Items popped from streaming queues.
    QueuePopped,
    /// Nanoseconds producers spent blocked on queue backpressure.
    QueueBlockedNs,
    /// Framed wire bytes sent by this process.
    TxBytes,
    /// Wire frames sent by this process.
    TxFrames,
    /// Framed wire bytes received by this process.
    RxBytes,
    /// Wire frames received by this process.
    RxFrames,
    /// Nanoseconds senders spent blocked in `Transport::send`.
    TxBlockedNs,
    /// NTT-domain kernel plaintexts actually built (cache misses).
    KernelCacheBuild,
    /// Kernel plaintext requests served from the cache.
    KernelCacheHit,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 23;

impl Counter {
    /// Every counter, in declaration order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::NttFwd,
        Counter::NttInv,
        Counter::Rotate,
        Counter::KeySwitch,
        Counter::ModSwitch,
        Counter::Encrypt,
        Counter::Decrypt,
        Counter::AddOps,
        Counter::MultPlain,
        Counter::PoolHit,
        Counter::PoolMiss,
        Counter::PoolRecycled,
        Counter::PoolDropped,
        Counter::QueuePushed,
        Counter::QueuePopped,
        Counter::QueueBlockedNs,
        Counter::TxBytes,
        Counter::TxFrames,
        Counter::RxBytes,
        Counter::RxFrames,
        Counter::TxBlockedNs,
        Counter::KernelCacheBuild,
        Counter::KernelCacheHit,
    ];

    /// Stable snake_case name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Counter::NttFwd => "ntt_fwd",
            Counter::NttInv => "ntt_inv",
            Counter::Rotate => "rotate",
            Counter::KeySwitch => "key_switch",
            Counter::ModSwitch => "mod_switch",
            Counter::Encrypt => "encrypt",
            Counter::Decrypt => "decrypt",
            Counter::AddOps => "add_ops",
            Counter::MultPlain => "mult_plain",
            Counter::PoolHit => "pool_hit",
            Counter::PoolMiss => "pool_miss",
            Counter::PoolRecycled => "pool_recycled",
            Counter::PoolDropped => "pool_dropped",
            Counter::QueuePushed => "queue_pushed",
            Counter::QueuePopped => "queue_popped",
            Counter::QueueBlockedNs => "queue_blocked_ns",
            Counter::TxBytes => "tx_bytes",
            Counter::TxFrames => "tx_frames",
            Counter::RxBytes => "rx_bytes",
            Counter::RxFrames => "rx_frames",
            Counter::TxBlockedNs => "tx_blocked_ns",
            Counter::KernelCacheBuild => "kernel_cache_build",
            Counter::KernelCacheHit => "kernel_cache_hit",
        }
    }

    /// Whether the counter accumulates nanoseconds (rendered as time).
    pub fn is_nanos(self) -> bool {
        matches!(self, Counter::QueueBlockedNs | Counter::TxBlockedNs)
    }
}

static COUNTERS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];

/// Sticky flag: flips to `true` the first time any thread installs a
/// [`SessionCounters`] sink, so processes that never serve sessions pay
/// only one extra relaxed load per `count` call and never touch TLS.
static SESSION_TRACKING: AtomicBool = AtomicBool::new(false);

/// A per-session counter sink. A serving thread installs one with
/// [`set_session_counters`]; every [`count`] call on that thread (and on
/// worker threads the executor propagates it to) is mirrored into it,
/// independently of the global [`enabled`] switch — so a server can
/// attribute HE ops, wire bytes and queue stalls to individual sessions
/// without turning on event buffering for the whole process.
#[derive(Debug)]
pub struct SessionCounters {
    id: u64,
    vals: [AtomicU64; COUNTER_COUNT],
}

impl SessionCounters {
    /// A fresh all-zero sink tagged with a session id.
    pub fn new(id: u64) -> Arc<Self> {
        Arc::new(SessionCounters {
            id,
            vals: [const { AtomicU64::new(0) }; COUNTER_COUNT],
        })
    }

    /// The session id this sink is tagged with.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A point-in-time copy of this session's counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        let mut snap = CounterSnapshot::default();
        for (i, c) in self.vals.iter().enumerate() {
            snap.vals[i] = c.load(Ordering::Relaxed);
        }
        snap
    }
}

thread_local! {
    static SESSION_SINK: RefCell<Option<Arc<SessionCounters>>> = const { RefCell::new(None) };
}

/// Installs (or clears, with `None`) the calling thread's per-session
/// counter sink and returns the previous one, so nested scopes can
/// restore it. Pass the same `Arc` to every thread working on behalf of
/// the session; relaxed additions commute, so the snapshot is exact.
pub fn set_session_counters(sink: Option<Arc<SessionCounters>>) -> Option<Arc<SessionCounters>> {
    if sink.is_some() {
        SESSION_TRACKING.store(true, Ordering::Relaxed);
    }
    SESSION_SINK.with(|s| std::mem::replace(&mut *s.borrow_mut(), sink))
}

/// The calling thread's current per-session sink, if any. Executors
/// read this before spawning workers and re-install it on each.
pub fn session_counters() -> Option<Arc<SessionCounters>> {
    if !SESSION_TRACKING.load(Ordering::Relaxed) {
        return None;
    }
    SESSION_SINK.with(|s| s.borrow().clone())
}

#[cold]
fn count_session(c: Counter, n: u64) {
    SESSION_SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.vals[c as usize].fetch_add(n, Ordering::Relaxed);
        }
    });
}

/// Adds `n` to a counter. Disabled path: two relaxed atomic loads and
/// branches (the global switch and the sticky session-tracking flag).
#[inline(always)]
pub fn count(c: Counter, n: u64) {
    if enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
    if SESSION_TRACKING.load(Ordering::Relaxed) {
        count_session(c, n);
    }
}

/// A point-in-time copy of every counter. Per-layer attribution is the
/// [`CounterSnapshot::delta`] between two snapshots — exact under
/// parallel workers because relaxed additions commute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    vals: [u64; COUNTER_COUNT],
}

impl CounterSnapshot {
    /// The snapshotted value of one counter.
    pub fn get(&self, c: Counter) -> u64 {
        self.vals[c as usize]
    }

    /// Overwrites one counter value (summary construction and tests).
    pub fn set(&mut self, c: Counter, v: u64) {
        self.vals[c as usize] = v;
    }

    /// Element-wise `self - earlier` (saturating, so snapshots taken
    /// across a [`reset`] degrade to zero instead of wrapping).
    pub fn delta(&self, earlier: &CounterSnapshot) -> CounterSnapshot {
        let mut out = CounterSnapshot::default();
        for i in 0..COUNTER_COUNT {
            out.vals[i] = self.vals[i].saturating_sub(earlier.vals[i]);
        }
        out
    }

    /// True when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.vals.iter().all(|&v| v == 0)
    }
}

/// Snapshots every counter (relaxed loads).
pub fn counters() -> CounterSnapshot {
    let mut snap = CounterSnapshot::default();
    for (i, c) in COUNTERS.iter().enumerate() {
        snap.vals[i] = c.load(Ordering::Relaxed);
    }
    snap
}

#[cfg(test)]
mod tests {
    use super::*;

    // The trace substrate is process-global, so every test that toggles
    // it runs under this lock (the workspace's integration tests live in
    // separate processes and are unaffected).
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    pub(crate) fn guard() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = guard();
        disable();
        reset();
        {
            let _s = span(Cat::He, "noop");
            instant(Cat::He, "marker");
            gauge(Cat::Stream, "depth", 3);
            count(Counter::Rotate, 5);
        }
        assert!(take_events().is_empty());
        assert!(counters().is_zero());
    }

    #[test]
    fn spans_nest_with_parent_ids() {
        let _g = guard();
        reset();
        enable();
        {
            let outer = span(Cat::Session, "outer");
            let outer_id = outer.id();
            {
                let inner = span(Cat::He, "inner").arg("bytes", 7);
                assert_ne!(inner.id(), 0);
            }
            instant(Cat::He, "mark");
            drop(outer);
            assert_ne!(outer_id, 0);
        }
        disable();
        let events = take_events();
        assert_eq!(events.len(), 3);
        let outer = events
            .iter()
            .find(|e| e.name.as_str() == "outer")
            .expect("outer span");
        let inner = events
            .iter()
            .find(|e| e.name.as_str() == "inner")
            .expect("inner span");
        let mark = events
            .iter()
            .find(|e| e.name.as_str() == "mark")
            .expect("instant");
        assert_eq!(inner.parent, outer.id);
        assert_eq!(mark.parent, outer.id);
        assert_eq!(inner.arg, Some(("bytes", 7)));
        assert!(inner.ts_ns >= outer.ts_ns);
        assert!(inner.end_ns() <= outer.end_ns());
        assert!(matches!(outer.phase, Phase::Span { .. }));
        reset();
    }

    #[test]
    fn counter_snapshot_delta() {
        let _g = guard();
        reset();
        enable();
        let before = counters();
        count(Counter::Rotate, 3);
        count(Counter::TxBytes, 1000);
        let mid = counters();
        count(Counter::Rotate, 2);
        let after = counters();
        disable();
        let d1 = mid.delta(&before);
        assert_eq!(d1.get(Counter::Rotate), 3);
        assert_eq!(d1.get(Counter::TxBytes), 1000);
        assert_eq!(d1.get(Counter::NttFwd), 0);
        let d2 = after.delta(&mid);
        assert_eq!(d2.get(Counter::Rotate), 2);
        assert_eq!(d2.get(Counter::TxBytes), 0);
        // saturating: delta "backwards" is zero, not a wrap
        assert_eq!(before.delta(&after).get(Counter::Rotate), 0);
        reset();
    }

    #[test]
    fn session_counters_mirror_without_global_enable() {
        let _g = guard();
        disable();
        reset();
        let sink = SessionCounters::new(7);
        assert_eq!(sink.id(), 7);
        let prev = set_session_counters(Some(Arc::clone(&sink)));
        count(Counter::Rotate, 4);
        count(Counter::TxBytes, 100);
        // Mirrored into the session sink even though tracing is off...
        assert_eq!(sink.snapshot().get(Counter::Rotate), 4);
        assert_eq!(sink.snapshot().get(Counter::TxBytes), 100);
        // ...while the process-global counters stay untouched.
        assert!(counters().is_zero());
        set_session_counters(prev);
        count(Counter::Rotate, 1);
        assert_eq!(sink.snapshot().get(Counter::Rotate), 4, "sink detached");
        reset();
    }

    #[test]
    fn session_counters_propagate_across_threads() {
        let _g = guard();
        disable();
        reset();
        let sink = SessionCounters::new(1);
        let prev = set_session_counters(Some(Arc::clone(&sink)));
        let inherited = session_counters().expect("sink installed");
        std::thread::spawn(move || {
            set_session_counters(Some(inherited));
            count(Counter::KeySwitch, 2);
        })
        .join()
        .unwrap();
        count(Counter::KeySwitch, 1);
        assert_eq!(sink.snapshot().get(Counter::KeySwitch), 3);
        set_session_counters(prev);
        reset();
    }

    #[test]
    fn span_args_fill_both_slots_in_order() {
        let _g = guard();
        reset();
        enable();
        {
            let _s = span(Cat::Net, "send")
                .arg("bytes", 10)
                .arg("flow", 99)
                .arg("extra", 7);
        }
        disable();
        let events = take_events();
        let send = events
            .iter()
            .find(|e| e.name.as_str() == "send")
            .expect("send span");
        assert_eq!(send.arg, Some(("bytes", 10)));
        // Third call overwrites the second slot, never the first.
        assert_eq!(send.arg2, Some(("extra", 7)));
        reset();
    }

    #[test]
    fn wire_trace_ids_gate_on_wire_context() {
        let _g = guard();
        disable_wire_context();
        assert_eq!(next_wire_trace_id(), 0, "zero while wire context off");
        enable_wire_context();
        assert!(enabled(), "wire context implies tracing");
        let a = next_wire_trace_id();
        let b = next_wire_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b, "ids are unique");
        assert_eq!(a >> 32, std::process::id() as u64, "pid in high bits");
        disable_wire_context();
        disable();
        assert_eq!(next_wire_trace_id(), 0);
    }

    #[test]
    fn cat_names_roundtrip() {
        for cat in [
            Cat::Client,
            Cat::Server,
            Cat::Stream,
            Cat::Net,
            Cat::He,
            Cat::Session,
            Cat::App,
        ] {
            assert_eq!(Cat::from_name(cat.name()), Some(cat));
        }
        assert_eq!(Cat::from_name("bogus"), None);
    }

    #[test]
    fn counter_names_cover_all_variants() {
        let mut seen = std::collections::HashSet::new();
        for c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate name {}", c.name());
        }
        assert_eq!(seen.len(), COUNTER_COUNT);
    }

    #[test]
    fn cross_thread_events_carry_distinct_tids() {
        let _g = guard();
        reset();
        enable();
        let main_tid = with_tls(|t| t.tid).unwrap();
        std::thread::spawn(|| {
            set_thread_label("worker-lane");
            let _s = span(Cat::Stream, "worker-span");
        })
        .join()
        .unwrap();
        disable();
        let events = take_events();
        let worker = events
            .iter()
            .find(|e| e.name.as_str() == "worker-span")
            .expect("worker span flushed on thread exit");
        assert_ne!(worker.tid, main_tid);
        assert!(thread_names()
            .iter()
            .any(|(tid, name)| *tid == worker.tid && name == "worker-lane"));
        reset();
    }
}
