//! Chrome-trace-format JSON exporter.
//!
//! Produces the JSON-array flavour of the [Trace Event Format] that
//! `chrome://tracing` and [Perfetto] load directly: spans become
//! complete (`"ph":"X"`) events, instants `"i"`, gauges counter
//! (`"C"`) events, and registered thread names become `thread_name`
//! metadata events. Timestamps are microseconds (fractional, from the
//! nanosecond trace clock); span/parent ids ride in `args` so the tree
//! survives tools that re-sort events.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//! [Perfetto]: https://ui.perfetto.dev

use crate::{Event, Phase};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal (quotes not included).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

pub(crate) fn push_us(out: &mut String, ns: u64) {
    // Microseconds with nanosecond precision, printed without float
    // rounding surprises: <int part>.<3 digits>.
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders `events` (plus the thread-name registry from
/// [`crate::thread_names`]) as a Chrome-trace JSON array.
pub fn chrome_trace_json(events: &[Event]) -> String {
    chrome_trace_json_with_threads(events, &crate::thread_names())
}

/// [`chrome_trace_json`] with an explicit thread-name table (exporters
/// in tests pass a fixed registry for determinism).
pub fn chrome_trace_json_with_threads(events: &[Event], threads: &[(u32, String)]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("[\n");
    let mut first = true;
    let mut emit = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };

    for (tid, name) in threads {
        emit(&mut out);
        out.push_str("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        escape_into(&mut out, name);
        out.push_str("\"}}");
    }

    for ev in events {
        emit(&mut out);
        out.push_str("{\"name\":\"");
        escape_into(&mut out, ev.name.as_str());
        out.push_str("\",\"cat\":\"");
        out.push_str(ev.cat.name());
        out.push_str("\",\"ph\":\"");
        match ev.phase {
            Phase::Span { .. } => out.push('X'),
            Phase::Instant => out.push('i'),
            Phase::Gauge { .. } => out.push('C'),
        }
        out.push_str("\",\"ts\":");
        push_us(&mut out, ev.ts_ns);
        if let Phase::Span { dur_ns } = ev.phase {
            out.push_str(",\"dur\":");
            push_us(&mut out, dur_ns);
        }
        let _ = write!(out, ",\"pid\":1,\"tid\":{}", ev.tid);
        if matches!(ev.phase, Phase::Instant) {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"args\":{");
        let mut first_arg = true;
        let mut arg_u64 = |out: &mut String, key: &str, v: u64| {
            if first_arg {
                first_arg = false;
            } else {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":{v}");
        };
        match ev.phase {
            Phase::Gauge { value } => arg_u64(&mut out, "value", value),
            _ => {
                if ev.id != 0 {
                    arg_u64(&mut out, "span", ev.id as u64);
                }
                if ev.parent != 0 {
                    arg_u64(&mut out, "parent", ev.parent as u64);
                }
            }
        }
        if let Some((key, v)) = ev.arg {
            arg_u64(&mut out, key, v);
        }
        if let Some((key, v)) = ev.arg2 {
            arg_u64(&mut out, key, v);
        }
        out.push_str("}}");
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cat, Name};

    fn ev(name: &'static str, ts: u64, dur: u64, tid: u32, id: u32, parent: u32) -> Event {
        Event {
            name: Name::Static(name),
            cat: Cat::Stream,
            ts_ns: ts,
            tid,
            id,
            parent,
            arg: None,
            arg2: None,
            phase: Phase::Span { dur_ns: dur },
        }
    }

    #[test]
    fn export_is_valid_json() {
        let events = vec![
            ev("outer", 1_000, 10_000, 1, 1, 0),
            ev("inner \"quoted\"\n", 2_000, 3_000, 1, 2, 1),
            Event {
                name: Name::Owned("depth".into()),
                cat: Cat::Stream,
                ts_ns: 2_500,
                tid: 2,
                id: 0,
                parent: 0,
                arg: None,
                arg2: None,
                phase: Phase::Gauge { value: 3 },
            },
            Event {
                name: Name::Static("mark"),
                cat: Cat::App,
                ts_ns: 4_000,
                tid: 1,
                id: 0,
                parent: 1,
                arg: Some(("bytes", 42)),
                arg2: Some(("flow", 7)),
                phase: Phase::Instant,
            },
        ];
        let threads = vec![(1, "main".to_string()), (2, "server-0".to_string())];
        let json = chrome_trace_json_with_threads(&events, &threads);
        crate::json::validate(&json).expect("exported trace must be valid JSON");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ts\":1.000"));
        assert!(json.contains("\"dur\":10.000"));
        assert!(json.contains("\"bytes\":42"));
        assert!(json.contains("\"flow\":7"));
        assert!(json.contains("inner \\\"quoted\\\"\\n"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json_with_threads(&[], &[]);
        crate::json::validate(&json).expect("empty trace");
        assert_eq!(json.trim(), "[\n\n]".trim());
    }
}
