//! A tiny leveled logger: one stderr line per event, target-prefixed,
//! level-filtered by the `SPOT_LOG` environment variable.
//!
//! This replaces the ad-hoc `eprintln!` diagnostics that accumulated in
//! the serving binaries with output that is grep-stable (every line is
//! `[LEVEL target] message`) and tunable at launch without a rebuild:
//!
//! ```text
//! SPOT_LOG=debug spot-server --listen 127.0.0.1:7000 ...
//! ```
//!
//! Levels are `error < warn < info < debug`; the default is `info`.
//! The filter is parsed once on first use and cached in an atomic, so
//! the per-call cost of a suppressed line is one relaxed load and a
//! compare — the formatting arguments are never evaluated (the check
//! lives in the macros, before `format_args!`).
//!
//! Zero dependencies, no timestamps, no global state beyond the cached
//! level: a server that wants richer telemetry has [`crate::metrics`];
//! this is for the human tail of `stderr`.

use std::fmt;
use std::io::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log severity, ordered `Error < Warn < Info < Debug` (a level admits
/// itself and everything more severe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The process is losing work (failed sessions, I/O errors).
    Error = 0,
    /// Degraded but continuing (admission rejects, protocol garbage).
    Warn = 1,
    /// Normal life-cycle events (session served, server listening).
    Info = 2,
    /// Per-step detail for debugging.
    Debug = 3,
}

impl Level {
    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
        }
    }

    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }
}

/// Cached max level + 1; 0 means "not yet initialised from SPOT_LOG".
static MAX_LEVEL: AtomicU8 = AtomicU8::new(0);

fn max_level() -> Level {
    match MAX_LEVEL.load(Ordering::Relaxed) {
        1 => Level::Error,
        2 => Level::Warn,
        3 => Level::Info,
        4 => Level::Debug,
        _ => {
            let level = std::env::var("SPOT_LOG")
                .ok()
                .and_then(|s| Level::parse(&s))
                .unwrap_or(Level::Info);
            MAX_LEVEL.store(level as u8 + 1, Ordering::Relaxed);
            level
        }
    }
}

/// Overrides the level filter (tests; normal processes configure via
/// `SPOT_LOG`).
pub fn set_max_level(level: Level) {
    MAX_LEVEL.store(level as u8 + 1, Ordering::Relaxed);
}

/// Whether a line at `level` would be emitted. The macros check this
/// before evaluating their format arguments.
#[inline]
pub fn log_enabled(level: Level) -> bool {
    level <= max_level()
}

/// Emits one `[LEVEL target] message` line to stderr. Prefer the
/// [`log_error!`](crate::log_error)/[`log_warn!`](crate::log_warn)/
/// [`log_info!`](crate::log_info)/[`log_debug!`](crate::log_debug)
/// macros, which skip argument evaluation when filtered.
pub fn log(level: Level, target: &str, args: fmt::Arguments<'_>) {
    if !log_enabled(level) {
        return;
    }
    // One write_all per line so concurrent threads do not interleave
    // mid-line; stderr's lock makes the single call atomic enough.
    let line = format!("[{} {}] {}\n", level.tag(), target, args);
    let _ = std::io::stderr().write_all(line.as_bytes());
}

/// Logs at [`Level::Error`]: `log_error!("server", "accept failed: {e}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Error) {
            $crate::log::log($crate::log::Level::Error, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Warn) {
            $crate::log::log($crate::log::Level::Warn, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Info) {
            $crate::log::log($crate::log::Level::Info, $target, format_args!($($arg)*));
        }
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        if $crate::log::log_enabled($crate::log::Level::Debug) {
            $crate::log::log($crate::log::Level::Debug, $target, format_args!($($arg)*));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_order_and_parse() {
        assert!(Level::Error < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("WARN"), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse(" info "), Some(Level::Info));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn filter_respects_set_level() {
        set_max_level(Level::Warn);
        assert!(log_enabled(Level::Error));
        assert!(log_enabled(Level::Warn));
        assert!(!log_enabled(Level::Info));
        assert!(!log_enabled(Level::Debug));
        set_max_level(Level::Debug);
        assert!(log_enabled(Level::Debug));
        // Reset to default for other tests in this process.
        set_max_level(Level::Info);
    }
}
