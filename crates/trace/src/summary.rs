//! Text summary exporter.
//!
//! Renders a recorded trace as plain-text tables: span aggregates
//! grouped by (category, name), and a counter section covering HE ops,
//! pool and queue activity, and per-direction wire traffic. This is
//! the human-readable counterpart to the Chrome-trace JSON exporter
//! and subsumes the ad-hoc stall/transfer dumps the binaries printed
//! before the trace layer existed.

use crate::{Counter, CounterSnapshot, Event, Phase};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Left-pads or right-pads cells into aligned columns under a header.
fn render_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let line = |cells: &[String], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            if i == 0 {
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            } else {
                let _ = write!(out, "{cell:>width$}", width = widths[i]);
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    line(&head, &mut out);
    let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    line(&rule, &mut out);
    for row in rows {
        line(row, &mut out);
    }
    out
}

/// Formats a nanosecond quantity as a human-scaled duration.
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn fmt_count(n: u64) -> String {
    n.to_string()
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

/// Renders span aggregates and counters as a text report.
///
/// Spans are grouped by `(category, name)` with per-group call count,
/// total, mean, and max duration, ordered by descending total time.
/// Counters are printed in declaration order, omitting zero rows, with
/// duration-valued counters rendered as time.
pub fn text_summary(events: &[Event], counters: &CounterSnapshot) -> String {
    let mut out = String::new();

    let mut spans: BTreeMap<(&str, String), SpanAgg> = BTreeMap::new();
    let mut instants: BTreeMap<(&str, String), u64> = BTreeMap::new();
    for ev in events {
        match ev.phase {
            Phase::Span { dur_ns } => {
                let agg = spans
                    .entry((ev.cat.name(), ev.name.as_str().to_string()))
                    .or_default();
                agg.count += 1;
                agg.total_ns += dur_ns;
                agg.max_ns = agg.max_ns.max(dur_ns);
            }
            Phase::Instant => {
                *instants
                    .entry((ev.cat.name(), ev.name.as_str().to_string()))
                    .or_default() += 1;
            }
            Phase::Gauge { .. } => {}
        }
    }

    if !spans.is_empty() {
        let mut rows: Vec<(&(&str, String), &SpanAgg)> = spans.iter().collect();
        rows.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|((cat, name), agg)| {
                vec![
                    format!("{cat}/{name}"),
                    fmt_count(agg.count),
                    fmt_ns(agg.total_ns),
                    fmt_ns(agg.total_ns / agg.count.max(1)),
                    fmt_ns(agg.max_ns),
                ]
            })
            .collect();
        out.push_str("spans (by total time)\n");
        out.push_str(&render_table(
            &["span", "count", "total", "mean", "max"],
            &table,
        ));
    }

    if !instants.is_empty() {
        let table: Vec<Vec<String>> = instants
            .iter()
            .map(|((cat, name), n)| vec![format!("{cat}/{name}"), fmt_count(*n)])
            .collect();
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("instant events\n");
        out.push_str(&render_table(&["event", "count"], &table));
    }

    let counter_rows: Vec<Vec<String>> = Counter::ALL
        .iter()
        .filter(|c| counters.get(**c) != 0)
        .map(|c| {
            let v = counters.get(*c);
            let shown = if c.is_nanos() {
                fmt_ns(v)
            } else {
                fmt_count(v)
            };
            vec![c.name().to_string(), shown]
        })
        .collect();
    if !counter_rows.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("counters\n");
        out.push_str(&render_table(&["counter", "value"], &counter_rows));
    }

    if out.is_empty() {
        out.push_str("(empty trace)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cat, Name};

    fn span_ev(name: &'static str, dur: u64) -> Event {
        Event {
            name: Name::Static(name),
            cat: Cat::Server,
            ts_ns: 0,
            tid: 1,
            id: 1,
            parent: 0,
            arg: None,
            arg2: None,
            phase: Phase::Span { dur_ns: dur },
        }
    }

    #[test]
    fn summary_aggregates_spans_and_counters() {
        let events = vec![span_ev("conv", 2_000_000), span_ev("conv", 4_000_000)];
        let mut counters = CounterSnapshot::default();
        counters.set(Counter::NttFwd, 12);
        counters.set(Counter::TxBlockedNs, 1_500_000);
        let text = text_summary(&events, &counters);
        assert!(text.contains("server/conv"), "{text}");
        assert!(text.contains("2"), "{text}");
        assert!(text.contains("6.00 ms"), "{text}");
        assert!(text.contains("3.00 ms"), "{text}");
        assert!(text.contains("ntt_fwd"), "{text}");
        assert!(text.contains("1.50 ms"), "{text}");
        // Zero counters are omitted.
        assert!(!text.contains("key_switch"), "{text}");
    }

    #[test]
    fn empty_trace_has_placeholder() {
        let text = text_summary(&[], &CounterSnapshot::default());
        assert_eq!(text, "(empty trace)\n");
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(120), "120 ns");
        assert_eq!(fmt_ns(1_500), "1.50 us");
        assert_eq!(fmt_ns(2_500_000), "2.50 ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.000 s");
    }
}
