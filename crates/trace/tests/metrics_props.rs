//! Property tests for the metrics registry: the log2 bucketing must
//! partition `u64` and preserve order, `merge`/`delta` must behave like
//! the sample-multiset operations they stand in for, quantile estimates
//! must stay inside the bucket of the true order statistic (the
//! documented factor-of-2 bound), and the Prometheus exposition must be
//! line-parseable with no duplicate series and cumulative buckets.
//!
//! Everything here uses standalone [`Histogram`]s and local
//! [`Registry`] instances via the unconditional `record`/`inc_always`
//! paths, so no test depends on (or mutates) the process-global metrics
//! switch.

use proptest::collection::vec;
use proptest::prelude::*;
use spot_trace::metrics::{
    bucket_index, bucket_lower, bucket_upper, encode_json, encode_prometheus, Histogram,
    HistogramSnapshot, Registry, HIST_BUCKETS,
};

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h.snapshot()
}

/// Sample values spread across the full bucket range: small literals,
/// arbitrary u64s, and values at the bucket edges (powers of two and
/// their predecessors).
fn sample() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..16,
        0u64..=u64::MAX,
        (0u32..64).prop_map(|i| 1u64 << i),
        (1u32..64).prop_map(|i| (1u64 << i) - 1),
    ]
}

proptest! {
    /// Every value lands in exactly one bucket whose bounds contain it,
    /// and bucketing preserves the total order of samples.
    #[test]
    fn bucket_bounds_contain_value(v in sample(), w in sample()) {
        let i = bucket_index(v);
        prop_assert!(i < HIST_BUCKETS);
        prop_assert!(bucket_lower(i) <= v || v <= 1, "lower bound exceeds value");
        prop_assert!(v <= bucket_upper(i));
        if v <= w {
            prop_assert!(bucket_index(v) <= bucket_index(w), "bucketing must be monotone");
        }
    }

    /// Merging two snapshots is exactly the snapshot of the
    /// concatenated sample multiset.
    #[test]
    fn merge_equals_concatenation(
        a in vec(sample(), 0..50),
        b in vec(sample(), 0..50),
    ) {
        // Keep sums far from u64 overflow so `sum` stays exact.
        let a: Vec<u64> = a.into_iter().map(|v| v >> 8).collect();
        let b: Vec<u64> = b.into_iter().map(|v| v >> 8).collect();
        let merged = snapshot_of(&a).merge(&snapshot_of(&b));
        let concat: Vec<u64> = a.iter().chain(&b).copied().collect();
        prop_assert_eq!(merged, snapshot_of(&concat));
    }

    /// `later.delta(earlier)` recovers the snapshot of exactly the
    /// samples recorded after `earlier` was taken.
    #[test]
    fn delta_recovers_suffix(
        prefix in vec(sample(), 0..50),
        suffix in vec(sample(), 0..50),
    ) {
        let prefix: Vec<u64> = prefix.into_iter().map(|v| v >> 8).collect();
        let suffix: Vec<u64> = suffix.into_iter().map(|v| v >> 8).collect();
        let h = Histogram::new();
        for &s in &prefix {
            h.record(s);
        }
        let earlier = h.snapshot();
        for &s in &suffix {
            h.record(s);
        }
        prop_assert_eq!(h.snapshot().delta(&earlier), snapshot_of(&suffix));
    }

    /// The quantile estimate lies inside the bucket holding the true
    /// order statistic — the documented factor-of-2 error bound.
    #[test]
    fn quantile_stays_in_true_bucket(
        samples in vec(sample(), 1..100),
        q in 0.0f64..1.01,
    ) {
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let truth = sorted[rank - 1];
        let est = snap.quantile(q);
        let b = bucket_index(truth);
        prop_assert!(
            bucket_lower(b) as f64 <= est && est <= bucket_upper(b) as f64,
            "estimate {} escapes bucket {} of true order statistic {}",
            est, b, truth
        );
    }

    /// `mean` is exact (sum is tracked exactly, not reconstructed from
    /// buckets).
    #[test]
    fn mean_is_exact(samples in vec(0u64..1 << 40, 1..100)) {
        let snap = snapshot_of(&samples);
        let expect = samples.iter().sum::<u64>() as f64 / samples.len() as f64;
        prop_assert!((snap.mean() - expect).abs() < 1e-6);
    }

    /// The Prometheus exposition of an arbitrary registry is
    /// line-parseable (`name{labels} value`), contains no duplicate
    /// series, and every histogram's buckets are cumulative, end in
    /// `+Inf`, and agree with `_count`. The JSON exposition of the same
    /// snapshot must parse.
    #[test]
    fn prometheus_exposition_is_well_formed(
        counters in vec((0usize..12, 0u64..1 << 40), 0..8),
        gauges in vec((0usize..12, 0u64..1 << 40), 0..8),
        hists in vec((0usize..6, vec(sample(), 0..30)), 0..4),
    ) {
        let reg = Registry::new();
        for (id, n) in &counters {
            reg.counter(&format!("c_{id}"), &[]).inc_always(*n);
        }
        for (id, v) in &gauges {
            reg.gauge("g_sessions", &[("shard", &format!("s{id}"))]).set(*v);
        }
        for (id, samples) in &hists {
            let h = reg.histogram(&format!("h_{id}_ns"), &[]);
            for &s in samples {
                h.record(s >> 8);
            }
        }
        let snap = reg.snapshot();
        let text = encode_prometheus(&snap);
        spot_trace::json::validate(&encode_json(&snap)).expect("JSON exposition must be valid");

        let mut seen = std::collections::BTreeSet::new();
        // Per histogram name: (cumulative-so-far, saw +Inf, count value).
        let mut hist_state: std::collections::BTreeMap<String, (u64, bool, Option<u64>)> =
            Default::default();
        for line in text.lines() {
            if line.starts_with('#') {
                prop_assert!(line.starts_with("# TYPE "), "unknown comment line {line:?}");
                continue;
            }
            let Some((key, value)) = line.rsplit_once(' ') else {
                return Err(TestCaseError::fail(format!("unparseable line {line:?}")));
            };
            prop_assert!(value.parse::<f64>().is_ok(), "non-numeric value in {line:?}");
            prop_assert!(seen.insert(key.to_string()), "duplicate series {key:?}");
            let name = key.split('{').next().unwrap();
            prop_assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "invalid metric name in {line:?}"
            );
            if let Some(base) = name.strip_suffix("_bucket") {
                let Some(le) = key.split("le=\"").nth(1).and_then(|s| s.split('"').next()) else {
                    return Err(TestCaseError::fail(format!(
                        "bucket line without le label: {line:?}"
                    )));
                };
                let cum: u64 = value.parse().unwrap();
                let entry = hist_state.entry(base.to_string()).or_default();
                prop_assert!(cum >= entry.0, "non-cumulative buckets in {base}");
                entry.0 = cum;
                if le == "+Inf" {
                    entry.1 = true;
                }
            } else if let Some(base) = name.strip_suffix("_count") {
                if let Some(entry) = hist_state.get_mut(base) {
                    entry.2 = Some(value.parse().unwrap());
                }
            }
        }
        for (base, (cum, saw_inf, count)) in &hist_state {
            prop_assert!(saw_inf, "histogram {base} missing +Inf bucket");
            prop_assert_eq!(
                Some(*cum), *count,
                "histogram {} +Inf bucket disagrees with _count", base
            );
        }
    }
}
