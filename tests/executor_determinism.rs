//! Thread-count determinism: every secure convolution scheme must
//! produce **bit-identical** results whether the server's parallel conv
//! executor runs on one thread or eight. The protocol draws all
//! randomness on the calling thread in a fixed order; the parallel
//! phase is pure, and outputs are reassembled in job order — so shares,
//! op counts, and ciphertext tallies must match exactly, not just
//! reconstruct to the same plaintext.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::core::channelwise::SecureConvResult;
use spot::core::executor::Executor;
use spot::core::patching::PatchMode;
use spot::core::{channelwise, cheetah, spot as spot_conv};
use spot::he::prelude::*;
use spot::tensor::{conv2d, Kernel, Tensor};
use std::sync::Arc;

fn ctx() -> Arc<spot::he::context::Context> {
    spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N4096))
}

/// Runs `f` under a fresh deterministic rng/keygen per thread count and
/// asserts the two results are bit-identical in every field.
fn assert_identical<F>(seed: u64, f: F) -> SecureConvResult
where
    F: Fn(
        &Arc<spot::he::context::Context>,
        &KeyGenerator,
        &Executor,
        &mut StdRng,
    ) -> SecureConvResult,
{
    let ctx = ctx();
    let run = |threads: usize| {
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        f(&ctx, &keygen, &Executor::new(threads), &mut rng)
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.client_share, parallel.client_share);
    assert_eq!(serial.server_share, parallel.server_share);
    assert_eq!(serial.counts, parallel.counts);
    assert_eq!(serial.input_cts, parallel.input_cts);
    assert_eq!(serial.output_cts, parallel.output_cts);
    assert_eq!(serial.modulus, parallel.modulus);
    serial
}

#[test]
fn spot_vanilla_is_thread_count_invariant() {
    let input = Tensor::random(4, 12, 12, 6, 11);
    let kernel = Kernel::random(4, 4, 3, 3, 4, 12);
    let res = assert_identical(41, |ctx, kg, ex, rng| {
        spot_conv::execute_with(
            ctx,
            kg,
            &input,
            &kernel,
            1,
            (5, 5),
            PatchMode::Vanilla,
            ex,
            rng,
        )
    });
    assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
}

#[test]
fn spot_tweaked_is_thread_count_invariant() {
    let input = Tensor::random(4, 12, 12, 6, 21);
    let kernel = Kernel::random(8, 4, 3, 3, 4, 22);
    let res = assert_identical(42, |ctx, kg, ex, rng| {
        spot_conv::execute_with(
            ctx,
            kg,
            &input,
            &kernel,
            1,
            (4, 4),
            PatchMode::Tweaked,
            ex,
            rng,
        )
    });
    assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
}

#[test]
fn channelwise_is_thread_count_invariant() {
    let input = Tensor::random(8, 8, 8, 6, 31);
    let kernel = Kernel::random(4, 8, 3, 3, 4, 32);
    let res = assert_identical(43, |ctx, kg, ex, rng| {
        channelwise::execute_with(ctx, kg, &input, &kernel, 1, ex, rng)
    });
    assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
}

#[test]
fn cheetah_is_thread_count_invariant() {
    let input = Tensor::random(16, 16, 16, 4, 51);
    let kernel = Kernel::random(4, 16, 3, 3, 3, 52);
    let res = assert_identical(44, |ctx, kg, ex, rng| {
        cheetah::execute_with(ctx, kg, &input, &kernel, 1, ex, rng)
    });
    assert_eq!(res.reconstruct(), conv2d(&input, &kernel, 1));
}
