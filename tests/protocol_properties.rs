//! Property tests for the two-party protocol substrate: secret sharing,
//! the OT-based non-linear layers, and the fixed-point pipeline.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::proto::channel::Channel;
use spot::proto::relu::{
    drelu_on_shares, maxpool2_on_shares, reconstruct_signed, relu_on_shares, share_tensor,
    truncate_on_shares,
};
use spot::proto::share::{reconstruct, share};
use spot::tensor::fixed::{from_field, to_field, FixedScale};

const T: u64 = 1_146_881; // the default plaintext modulus

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sharing_roundtrip(values in proptest::collection::vec(0u64..T, 1..64), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (c, s) = share(&values, T, &mut rng);
        prop_assert_eq!(reconstruct(&c, &s), values);
    }

    #[test]
    fn relu_on_shares_is_relu(
        values in proptest::collection::vec(-500_000i64..500_000, 1..64),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ch = Channel::new();
        let (c, s) = share_tensor(&values, T, &mut rng);
        let (oc, os) = relu_on_shares(&c, &s, &mut ch, &mut rng);
        let got = reconstruct_signed(&oc, &os);
        let want: Vec<i64> = values.iter().map(|&v| v.max(0)).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn drelu_matches_sign(
        values in proptest::collection::vec(-500_000i64..500_000, 1..32),
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ch = Channel::new();
        let (c, s) = share_tensor(&values, T, &mut rng);
        let (oc, os) = drelu_on_shares(&c, &s, &mut ch, &mut rng);
        let got = reconstruct_signed(&oc, &os);
        for (g, v) in got.iter().zip(&values) {
            prop_assert_eq!(*g, i64::from(*v > 0));
        }
    }

    #[test]
    fn maxpool_matches_reference(
        h2 in 1usize..4,
        w2 in 1usize..4,
        ch_count in 1usize..3,
        seed in 0u64..1000,
    ) {
        let h = 2 * h2;
        let w = 2 * w2;
        let mut rng = StdRng::seed_from_u64(seed);
        let n = ch_count * h * w;
        let values: Vec<i64> = (0..n).map(|i| ((i as i64 * 2654435761i64) % 1001) - 500).collect();
        let mut chl = Channel::new();
        let (c, s) = share_tensor(&values, T, &mut rng);
        let (oc, os) = maxpool2_on_shares(&c, &s, ch_count, h, w, &mut chl, &mut rng);
        let got = reconstruct_signed(&oc, &os);
        let mut want = Vec::new();
        for cc in 0..ch_count {
            for y in 0..h2 {
                for x in 0..w2 {
                    let mut m = i64::MIN;
                    for dy in 0..2 {
                        for dx in 0..2 {
                            m = m.max(values[(cc * h + 2 * y + dy) * w + 2 * x + dx]);
                        }
                    }
                    want.push(m);
                }
            }
        }
        prop_assert_eq!(got, want);
    }

    #[test]
    fn truncation_is_arithmetic_shift(
        values in proptest::collection::vec(-400_000i64..400_000, 1..32),
        shift in 1u32..8,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ch = Channel::new();
        let (c, s) = share_tensor(&values, T, &mut rng);
        let (oc, os) = truncate_on_shares(&c, &s, shift, &mut ch, &mut rng);
        let got = reconstruct_signed(&oc, &os);
        let want: Vec<i64> = values.iter().map(|&v| v >> shift).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn field_embedding_roundtrip(v in -500_000i64..500_000) {
        prop_assert_eq!(from_field(to_field(v, T), T), v);
    }

    #[test]
    fn fixed_point_precision(x in -100.0f64..100.0, bits in 4u32..12) {
        let s = FixedScale::new(bits);
        let err = (s.decode(s.encode(x)) - x).abs();
        prop_assert!(err <= 1.0 / (1 << bits) as f64);
    }
}

#[test]
fn protocol_traffic_is_charged_per_layer() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut ch = Channel::new();
    let values = vec![1i64; 1000];
    let (c, s) = share_tensor(&values, T, &mut rng);
    let before = ch.total_bytes();
    relu_on_shares(&c, &s, &mut ch, &mut rng);
    let after_relu = ch.total_bytes();
    assert!(
        after_relu > before + 50_000,
        "ReLU must charge ~100B/element"
    );
    truncate_on_shares(&c, &s, 4, &mut ch, &mut rng);
    assert!(ch.total_bytes() > after_relu);
}
