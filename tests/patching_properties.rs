//! Property tests for the structure-patching math: for arbitrary input
//! shapes, patch sizes, and kernel sizes, the decompose → per-piece
//! convolve → assemble pipeline must equal the monolithic convolution.
//! This is the inclusion–exclusion identity that overlap tweaking's
//! correctness rests on (Sec. III-B of the paper).

use proptest::prelude::*;
use spot::core::patching::{decompose, reference_patched_conv, PatchMode};
use spot::tensor::{conv2d, Kernel, Tensor};

fn k_sizes() -> impl Strategy<Value = usize> {
    prop_oneof![Just(1usize), Just(3), Just(5)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tweaked_assembly_equals_monolithic_conv(
        h in 5usize..14,
        w in 5usize..14,
        ci in 1usize..4,
        co in 1usize..4,
        ph in 3usize..7,
        pw in 3usize..7,
        k in k_sizes(),
        seed in 0u64..1000,
    ) {
        // patch must exceed the tweaked overlap (k-2)
        prop_assume!(ph > k.saturating_sub(2) && pw > k.saturating_sub(2));
        prop_assume!(ph <= h && pw <= w);
        let input = Tensor::random(ci, h, w, 12, seed);
        let kernel = Kernel::random(co, ci, k, k, 6, seed + 1);
        let got = reference_patched_conv(&input, &kernel, ph, pw, PatchMode::Tweaked);
        let want = conv2d(&input, &kernel, 1);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn vanilla_assembly_equals_monolithic_conv(
        h in 6usize..14,
        w in 6usize..14,
        ci in 1usize..3,
        ph in 4usize..8,
        k in prop_oneof![Just(1usize), Just(3)],
        seed in 0u64..1000,
    ) {
        prop_assume!(ph > k.saturating_sub(1));
        prop_assume!(ph <= h && ph <= w);
        let input = Tensor::random(ci, h, w, 12, seed);
        let kernel = Kernel::random(2, ci, k, k, 6, seed + 1);
        let got = reference_patched_conv(&input, &kernel, ph, ph, PatchMode::Vanilla);
        let want = conv2d(&input, &kernel, 1);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn piece_multiplicity_is_one(
        h in 5usize..13,
        w in 5usize..13,
        ph in 3usize..6,
        pw in 3usize..6,
    ) {
        // Every input element's signed piece-membership count must be
        // exactly 1 — the invariant behind the arithmetic assembly.
        let input = Tensor::random(1, h, w, 5, 99);
        let d = decompose(&input, ph, pw, 3, PatchMode::Tweaked);
        let mut multiplicity = vec![0i64; h * w];
        for (class, pieces) in &d.classes {
            for piece in pieces {
                for y in 0..class.h {
                    for x in 0..class.w {
                        let gy = piece.y0 + y;
                        let gx = piece.x0 + x;
                        if gy < h && gx < w {
                            multiplicity[gy * w + gx] += piece.sign;
                        }
                    }
                }
            }
        }
        prop_assert!(multiplicity.iter().all(|&m| m == 1),
            "multiplicity map not all-ones: {multiplicity:?}");
    }

    #[test]
    fn aux_pieces_are_small_fraction(
        ph in 4usize..8,
        pw in 4usize..8,
    ) {
        // The paper's claim: overlap tweaking adds only "a small number
        // of auxiliary ciphertexts". Auxiliary piece AREA must be well
        // below the main patch area.
        let input = Tensor::zeros(1, 32, 32);
        let d = decompose(&input, ph, pw, 3, PatchMode::Tweaked);
        let main_area: usize = d.classes[0].1.len() * ph * pw;
        let aux_area: usize = d.classes[1..]
            .iter()
            .map(|(c, p)| p.len() * c.h * c.w)
            .sum();
        // strictly less than the main area; under 50% even for the
        // smallest patches, shrinking as patches grow
        prop_assert!(aux_area < main_area,
            "aux area {aux_area} vs main {main_area}");
    }
}
