//! End-to-end integration: functional secure inference of a CNN,
//! network planning across schemes, and simulator-level reproduction of
//! the paper's qualitative claims.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::core::inference::{plan_conv, plan_network, Scheme, TinyCnn};
use spot::core::memory_util::in_memory_values_per_mb;
use spot::he::prelude::*;
use spot::pipeline::device::DeviceProfile;
use spot::pipeline::sim::{simulate_conv, SimConfig};
use spot::tensor::models::{resnet18, resnet50, vgg16, ConvShape};
use spot::tensor::Tensor;

#[test]
fn tiny_cnn_secure_inference_matches_plaintext() {
    let ctx = spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(7);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let cnn = TinyCnn::new(3);
    let image = Tensor::random(2, 8, 8, 6, 4);
    let expected = cnn.forward_plain(&image);
    for scheme in Scheme::ALL {
        let (out, channel) = cnn.forward_secure(&ctx, &keygen, &image, scheme, &mut rng);
        assert_eq!(out, expected, "{}", scheme.name());
        // the non-linear protocol must actually exchange traffic
        assert!(channel.total_bytes() > 10_000);
    }
}

#[test]
fn paper_claim_stall_disappears_under_spot() {
    let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
    let cfg = SimConfig::with_client(DeviceProfile::iot_k27());
    let cw = simulate_conv(&plan_conv(&shape, Scheme::CrypTFlow2, false), &cfg).timing;
    let sp = simulate_conv(&plan_conv(&shape, Scheme::Spot, false), &cfg).timing;
    assert!(
        cw.stall_s > 5.0 * sp.stall_s.max(0.01),
        "channel-wise stall {} vs SPOT {}",
        cw.stall_s,
        sp.stall_s
    );
}

#[test]
fn paper_claim_spot_wins_end_to_end_on_tiny_clients() {
    for net in [resnet50(), vgg16()] {
        for client in [DeviceProfile::nexus6(), DeviceProfile::iot_k27()] {
            let cfg = SimConfig::with_client(client);
            let cw = plan_network(&net, Scheme::CrypTFlow2).simulate(&cfg);
            let ch = plan_network(&net, Scheme::Cheetah).simulate(&cfg);
            let sp = plan_network(&net, Scheme::Spot).simulate(&cfg);
            let best = cw.total_s.min(ch.total_s);
            assert!(
                sp.total_s < best,
                "{}: SPOT {} vs best baseline {}",
                net.name(),
                sp.total_s,
                best
            );
            // roughly the paper's factor: at least 1.2x, at most 5x
            let speedup = best / sp.total_s;
            assert!((1.2..5.0).contains(&speedup), "speedup {speedup}");
        }
    }
}

#[test]
fn paper_claim_cheetah_advantage_collapses_on_iot() {
    let net = resnet50();
    let desk = SimConfig::with_client(DeviceProfile::desktop_client());
    let iot = SimConfig::with_client(DeviceProfile::iot_k27());
    let ratio_desktop = plan_network(&net, Scheme::CrypTFlow2)
        .simulate(&desk)
        .total_s
        / plan_network(&net, Scheme::Cheetah).simulate(&desk).total_s;
    let ratio_iot = plan_network(&net, Scheme::CrypTFlow2)
        .simulate(&iot)
        .total_s
        / plan_network(&net, Scheme::Cheetah).simulate(&iot).total_s;
    // Table II: desktop speedup (260%) collapses to ~20% on IoT.
    assert!(
        ratio_desktop > 1.5 * ratio_iot,
        "desktop {ratio_desktop} vs iot {ratio_iot}"
    );
}

#[test]
fn paper_claim_spot_memory_utilization_wins() {
    // Fig. 11: SPOT holds up to ~2x more in-memory values per MB.
    let mut wins = 0usize;
    let mut total = 0usize;
    for (w, h, c) in [
        (56usize, 56usize, 64usize),
        (28, 28, 128),
        (14, 14, 256),
        (7, 7, 512),
    ] {
        let shape = ConvShape::new(w, h, c, c, 3, 1);
        let sp = in_memory_values_per_mb(&plan_conv(&shape, Scheme::Spot, false));
        let cw = in_memory_values_per_mb(&plan_conv(&shape, Scheme::CrypTFlow2, false));
        let ch = in_memory_values_per_mb(&plan_conv(&shape, Scheme::Cheetah, false));
        total += 1;
        if sp > cw && sp > ch {
            wins += 1;
        }
    }
    assert!(
        wins >= 3,
        "SPOT should win memory utilization on most blocks ({wins}/{total})"
    );
}

#[test]
fn network_plans_cover_every_linear_layer() {
    for (net, expect_linear) in [(resnet18(), 18), (resnet50(), 50), (vgg16(), 16)] {
        for scheme in Scheme::ALL {
            let plan = plan_network(&net, scheme);
            assert_eq!(
                plan.conv_plans.len(),
                expect_linear,
                "{} {}",
                net.name(),
                scheme.name()
            );
            assert!(plan.total_comm_bytes() > 1_000_000);
        }
    }
}

#[test]
fn spot_chooses_smaller_parameters_than_channelwise() {
    // Observation 2: CrypTFlow2 is stuck at N >= 8192; SPOT drops to 4096.
    let shape = ConvShape::new(56, 56, 64, 64, 3, 1);
    let cw = plan_conv(&shape, Scheme::CrypTFlow2, false);
    let sp = plan_conv(&shape, Scheme::Spot, false);
    assert!(cw.level.degree() >= 8192);
    assert!(sp.level.degree() <= cw.level.degree());
}

#[test]
fn device_capacity_ordering_matches_paper() {
    // desktop >> nexus > iot in ciphertext capacity
    let ct = 446_480usize; // N=8192 ciphertext
    let d = DeviceProfile::desktop_client().ciphertext_capacity(ct);
    let n = DeviceProfile::nexus6().ciphertext_capacity(ct);
    let i = DeviceProfile::iot_k27().ciphertext_capacity(ct);
    assert!(d > 100 * n);
    assert!(n >= i);
    assert_eq!(i, 1);
}
