//! Cross-crate integration: every secure convolution scheme — channel-
//! wise (CrypTFlow2), coefficient-encoded (Cheetah), and SPOT with both
//! patch modes — must produce shares reconstructing to the exact
//! plaintext convolution, across channel regimes (`C_o > C_i`,
//! `C_o = C_i`, `C_o < C_i`), kernel sizes, and strides, under real BFV.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::core::patching::PatchMode;
use spot::core::{channelwise, cheetah, spot as spot_conv};
use spot::he::prelude::*;
use spot::tensor::{conv2d, Kernel, Tensor};
use std::sync::Arc;

fn ctx() -> Arc<spot::he::context::Context> {
    spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N4096))
}

proptest! {
    // Real-HE cases: keep small and few.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn all_schemes_agree_with_reference(
        ci_log in 1usize..4,
        co_log in 1usize..4,
        k in prop_oneof![Just(1usize), Just(3)],
        stride in 1usize..3,
        seed in 0u64..100,
    ) {
        let ci = 1 << ci_log;
        let co = 1 << co_log;
        let ctx = ctx();
        let mut rng = StdRng::seed_from_u64(seed);
        let keygen = KeyGenerator::new(&ctx, &mut rng);
        let input = Tensor::random(ci, 8, 8, 6, seed);
        let kernel = Kernel::random(co, ci, k, k, 4, seed + 1);
        let expected = conv2d(&input, &kernel, stride);

        let cw = channelwise::execute(&ctx, &keygen, &input, &kernel, stride, &mut rng);
        prop_assert_eq!(cw.reconstruct(), expected.clone());

        let ch = cheetah::execute(&ctx, &keygen, &input, &kernel, stride, &mut rng);
        prop_assert_eq!(ch.reconstruct(), expected.clone());
        prop_assert_eq!(ch.counts.rotate, 0);

        let sp = spot_conv::execute(
            &ctx, &keygen, &input, &kernel, stride, (4, 4), PatchMode::Tweaked, &mut rng,
        );
        prop_assert_eq!(sp.reconstruct(), expected);
    }
}

#[test]
fn spot_shares_leak_nothing_obvious() {
    // The client share alone must look unrelated to the true output:
    // re-running with a different RNG changes the share but not the
    // reconstruction.
    let ctx = ctx();
    let mut rng1 = StdRng::seed_from_u64(1);
    let mut rng2 = StdRng::seed_from_u64(2);
    let kg1 = KeyGenerator::new(&ctx, &mut rng1);
    let kg2 = KeyGenerator::new(&ctx, &mut rng2);
    let input = Tensor::random(4, 8, 8, 6, 5);
    let kernel = Kernel::random(4, 4, 3, 3, 4, 6);
    let a = spot_conv::execute(
        &ctx,
        &kg1,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng1,
    );
    let b = spot_conv::execute(
        &ctx,
        &kg2,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng2,
    );
    assert_ne!(a.client_share, b.client_share, "shares must be randomized");
    assert_eq!(a.reconstruct(), b.reconstruct());
}

#[test]
fn spot_vanilla_and_tweaked_agree() {
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(33);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(2, 10, 10, 6, 7);
    let kernel = Kernel::random(4, 2, 3, 3, 4, 8);
    let v = spot_conv::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (5, 5),
        PatchMode::Vanilla,
        &mut rng,
    );
    let t = spot_conv::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (5, 5),
        PatchMode::Tweaked,
        &mut rng,
    );
    assert_eq!(v.reconstruct(), t.reconstruct());
    // tweaking reduces total duplicated input footprint: fewer or equal cts
    assert!(
        t.input_cts <= v.input_cts + 4,
        "tweaked {} vs vanilla {}",
        t.input_cts,
        v.input_cts
    );
}

#[test]
fn non_square_and_padded_shapes() {
    // Non-power-of-two spatial dims and channel counts exercise padding.
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(44);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(3, 7, 9, 6, 9);
    let kernel = Kernel::random(5, 3, 3, 3, 4, 10);
    let expected = conv2d(&input, &kernel, 1);
    let cw = channelwise::execute(&ctx, &keygen, &input, &kernel, 1, &mut rng);
    assert_eq!(cw.reconstruct(), expected);
    let sp = spot_conv::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    assert_eq!(sp.reconstruct(), expected);
}

#[test]
fn deep_channel_folding_co_much_less_than_ci() {
    // C_o << C_i exercises the concatenated-diagonal folding path.
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(55);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(16, 4, 4, 5, 11);
    let kernel = Kernel::random(2, 16, 3, 3, 3, 12);
    let expected = conv2d(&input, &kernel, 1);
    let sp = spot_conv::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    assert_eq!(sp.reconstruct(), expected);
}

#[test]
fn spot_works_at_n8192() {
    // Exercise a bigger parameter level end to end (5 RNS primes,
    // deeper key-switching) — SPOT's cost-aware planner sometimes picks
    // this level for channel-heavy layers.
    let ctx8 = spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N8192));
    let mut rng = StdRng::seed_from_u64(77);
    let keygen = KeyGenerator::new(&ctx8, &mut rng);
    let input = Tensor::random(4, 8, 8, 6, 13);
    let kernel = Kernel::random(8, 4, 3, 3, 4, 14);
    let sp = spot_conv::execute(
        &ctx8,
        &keygen,
        &input,
        &kernel,
        1,
        (8, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    assert_eq!(sp.reconstruct(), conv2d(&input, &kernel, 1));
}

#[test]
fn single_channel_input_lane_contained_path() {
    // C_i = 1 exercises the non-split packing branch.
    let ctx = ctx();
    let mut rng = StdRng::seed_from_u64(88);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let input = Tensor::random(1, 8, 8, 6, 15);
    let kernel = Kernel::random(4, 1, 3, 3, 4, 16);
    let sp = spot_conv::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    assert_eq!(sp.reconstruct(), conv2d(&input, &kernel, 1));
}
