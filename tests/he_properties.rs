//! Property tests for the BFV substrate: encryption correctness and the
//! homomorphisms (addition, plaintext multiplication, rotation) hold for
//! arbitrary slot vectors.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::he::encoding::rotate_slots_reference;
use spot::he::prelude::*;
use std::sync::Arc;

struct He {
    ctx: Arc<spot::he::context::Context>,
    encoder: BatchEncoder,
    encryptor: Encryptor,
    decryptor: Decryptor,
    evaluator: Evaluator,
    galois: GaloisKeys,
    rng: StdRng,
}

fn setup() -> He {
    let ctx = spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let pk = keygen.public_key(&mut rng);
    let evaluator = Evaluator::new(&ctx);
    let galois = keygen.galois_keys(&evaluator.galois_elements(&[1, 2, 16, -3], true), &mut rng);
    He {
        encoder: BatchEncoder::new(&ctx),
        encryptor: Encryptor::new(&ctx, pk),
        decryptor: Decryptor::new(&ctx, keygen.secret_key().clone()),
        evaluator,
        galois,
        rng,
        ctx,
    }
}

fn slot_vec(len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, len)
}

proptest! {
    // HE cases are expensive; keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn encrypt_decrypt_roundtrip(values in slot_vec(64)) {
        let mut he = setup();
        let t = he.ctx.params().plain_modulus();
        let vals: Vec<u64> = values.iter().map(|&v| v % t).collect();
        let ct = he.encryptor.encrypt(&he.encoder.encode(&vals), &mut he.rng);
        let out = he.encoder.decode(&he.decryptor.decrypt(&ct));
        prop_assert_eq!(&out[..64], &vals[..]);
    }

    #[test]
    fn homomorphic_add_and_mult(a in slot_vec(32), b in slot_vec(32)) {
        let mut he = setup();
        let t = he.ctx.params().plain_modulus();
        let a: Vec<u64> = a.iter().map(|&v| v % t).collect();
        let b: Vec<u64> = b.iter().map(|&v| v % t).collect();
        let ca = he.encryptor.encrypt(&he.encoder.encode(&a), &mut he.rng);
        let cb = he.encryptor.encrypt(&he.encoder.encode(&b), &mut he.rng);
        let sum = he.evaluator.add(&ca, &cb);
        let prod = he.evaluator.multiply_plain(&ca, &he.encoder.encode(&b));
        let sum_out = he.encoder.decode(&he.decryptor.decrypt(&sum));
        let prod_out = he.encoder.decode(&he.decryptor.decrypt(&prod));
        for i in 0..32 {
            prop_assert_eq!(sum_out[i], (a[i] + b[i]) % t);
            prop_assert_eq!(prod_out[i], ((a[i] as u128 * b[i] as u128) % t as u128) as u64);
        }
    }

    #[test]
    fn rotation_semantics(values in slot_vec(128), step in prop_oneof![Just(1i64), Just(2), Just(16), Just(-3)]) {
        let mut he = setup();
        let t = he.ctx.params().plain_modulus();
        let mut vals: Vec<u64> = values.iter().map(|&v| v % t).collect();
        vals.resize(he.ctx.degree(), 0);
        let ct = he.encryptor.encrypt(&he.encoder.encode(&vals), &mut he.rng);
        let rot = he.evaluator.rotate_rows(&ct, step, &he.galois);
        prop_assert!(he.decryptor.noise_budget(&rot) > 5);
        let out = he.encoder.decode(&he.decryptor.decrypt(&rot));
        prop_assert_eq!(out, rotate_slots_reference(&vals, step));
    }

    #[test]
    fn masking_hides_and_reconstructs(values in slot_vec(16), mask in slot_vec(16)) {
        // server-side additive masking: decrypt(ct - r) + r == m (mod t)
        let mut he = setup();
        let t = he.ctx.params().plain_modulus();
        let vals: Vec<u64> = values.iter().map(|&v| v % t).collect();
        let r: Vec<u64> = mask.iter().map(|&v| v % t).collect();
        let ct = he.encryptor.encrypt(&he.encoder.encode(&vals), &mut he.rng);
        let masked = he.evaluator.sub_plain(&ct, &he.encoder.encode(&r));
        let share = he.encoder.decode(&he.decryptor.decrypt(&masked));
        for i in 0..16 {
            prop_assert_eq!((share[i] + r[i]) % t, vals[i]);
        }
    }
}

#[test]
fn serialization_is_bit_packed_and_lossless() {
    let mut he = setup();
    let vals: Vec<u64> = (0..256u64).collect();
    let ct = he.encryptor.encrypt(&he.encoder.encode(&vals), &mut he.rng);
    let bytes = ct.to_bytes();
    // bit-packed: well below 2 * k * N * 8 raw bytes
    assert!(bytes.len() < 2 * 3 * 4096 * 8);
    assert_eq!(bytes.len(), he.ctx.params().ciphertext_bytes());
    let restored = spot::he::ciphertext::Ciphertext::from_bytes(&he.ctx, &bytes);
    let out = he.encoder.decode(&he.decryptor.decrypt(&restored));
    assert_eq!(&out[..256], &vals[..]);
}

#[test]
fn noise_budget_degrades_monotonically() {
    let mut he = setup();
    let vals = vec![3u64; 16];
    let ct = he.encryptor.encrypt(&he.encoder.encode(&vals), &mut he.rng);
    let fresh = he.decryptor.noise_budget(&ct);
    let after_mult = he
        .decryptor
        .noise_budget(&he.evaluator.multiply_plain(&ct, &he.encoder.encode(&vals)));
    let after_rot = he
        .decryptor
        .noise_budget(&he.evaluator.rotate_rows(&ct, 1, &he.galois));
    assert!(fresh > after_mult, "mult must consume budget");
    assert!(fresh >= after_rot, "rotation must not gain budget");
    assert!(after_mult > 5, "one mult must leave usable budget");
}
