//! Failure injection: the system must fail loudly (or degrade into
//! garbage that cannot be mistaken for a valid result), never silently
//! corrupt, when ciphertexts are tampered with, keys are mismatched, or
//! protocol inputs are malformed.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::he::ciphertext::Ciphertext;
use spot::he::modswitch::ModSwitch;
use spot::he::prelude::*;
use std::sync::Arc;

fn setup() -> (
    Arc<spot::he::context::Context>,
    KeyGenerator,
    BatchEncoder,
    Encryptor,
    Decryptor,
    StdRng,
) {
    let ctx = spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(123);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    let pk = keygen.public_key(&mut rng);
    (
        Arc::clone(&ctx),
        KeyGenerator::new(&ctx, &mut StdRng::seed_from_u64(123)),
        BatchEncoder::new(&ctx),
        Encryptor::new(&ctx, pk),
        Decryptor::new(&ctx, keygen.secret_key().clone()),
        rng,
    )
}

#[test]
fn tampered_ciphertext_decrypts_to_garbage_not_plaintext() {
    let (ctx, _kg, encoder, encryptor, decryptor, mut rng) = setup();
    let values = vec![42u64; 128];
    let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
    let mut bytes = ct.to_bytes();
    // flip bits deep inside the payload
    let mid = bytes.len() / 2;
    for b in bytes.iter_mut().skip(mid).take(64) {
        *b ^= 0xFF;
    }
    let tampered = Ciphertext::from_bytes(&ctx, &bytes);
    let decoded = encoder.decode(&decryptor.decrypt(&tampered));
    assert_ne!(
        &decoded[..128],
        &values[..],
        "tampering must not preserve plaintext"
    );
    // and the noise budget must collapse
    assert_eq!(decryptor.noise_budget(&tampered), 0);
}

#[test]
#[should_panic(expected = "header mismatch")]
fn deserializing_under_wrong_context_panics() {
    let (_, _, encoder, encryptor, _, mut rng) = setup();
    let ct = encryptor.encrypt(&encoder.encode(&[1, 2, 3]), &mut rng);
    let other = spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N8192));
    let _ = Ciphertext::from_bytes(&other, &ct.to_bytes());
}

#[test]
#[should_panic(expected = "payload size")]
fn truncated_ciphertext_panics() {
    let (ctx, _, encoder, encryptor, _, mut rng) = setup();
    let ct = encryptor.encrypt(&encoder.encode(&[1, 2, 3]), &mut rng);
    let bytes = ct.to_bytes();
    let _ = Ciphertext::from_bytes(&ctx, &bytes[..bytes.len() - 100]);
}

#[test]
#[should_panic(expected = "missing Galois key")]
fn rotation_without_key_panics() {
    let (ctx, kg, encoder, encryptor, _, mut rng) = setup();
    let ev = Evaluator::new(&ctx);
    let gk = kg.galois_keys(&ev.galois_elements(&[1], false), &mut rng);
    let ct = encryptor.encrypt(&encoder.encode(&[1]), &mut rng);
    let _ = ev.rotate_rows(&ct, 7, &gk); // only step 1 has a key
}

#[test]
fn wrong_secret_key_yields_zero_budget() {
    let (ctx, _, encoder, encryptor, _, mut rng) = setup();
    let other = KeyGenerator::new(&ctx, &mut rng);
    let wrong = Decryptor::new(&ctx, other.secret_key().clone());
    let ct = encryptor.encrypt(&encoder.encode(&[9, 9, 9]), &mut rng);
    assert_eq!(wrong.noise_budget(&ct), 0);
}

#[test]
fn budget_exhaustion_is_detected_before_corruption() {
    // Repeated plaintext multiplications must drive the reported budget
    // to zero before (or at the same time as) results go wrong.
    let (ctx, _, encoder, encryptor, decryptor, mut rng) = setup();
    let t = ctx.params().plain_modulus();
    let big = encoder.encode(&[t - 1; 16]);
    let ev = Evaluator::new(&ctx);
    let mut ct = encryptor.encrypt(&encoder.encode(&[1u64; 16]), &mut rng);
    let mut expected = [1u64; 16];
    for round in 0..6 {
        ct = ev.multiply_plain(&ct, &big);
        for e in expected.iter_mut() {
            *e = ((*e as u128 * (t - 1) as u128) % t as u128) as u64;
        }
        let budget = decryptor.noise_budget(&ct);
        let decoded = encoder.decode(&decryptor.decrypt(&ct));
        let correct = decoded[..16] == expected[..];
        if budget > 0 {
            assert!(correct, "round {round}: budget {budget} but wrong result");
        }
        if !correct {
            assert_eq!(budget, 0, "round {round}: corruption with nonzero budget");
            return; // corruption was detected — test passes
        }
    }
}

#[test]
fn modswitch_of_tampered_ciphertext_stays_garbage() {
    let (ctx, kg, encoder, encryptor, _, mut rng) = setup();
    let values = vec![7u64; 32];
    let ct = encryptor.encrypt(&encoder.encode(&values), &mut rng);
    let mut bytes = ct.to_bytes();
    bytes[100] ^= 0x55;
    let tampered = Ciphertext::from_bytes(&ctx, &bytes);
    let switcher = ModSwitch::new(&ctx);
    let small = switcher.switch(&tampered);
    let dst = switcher.target_context();
    let dec = Decryptor::new(dst, kg.secret_key_for(dst));
    let decoded = BatchEncoder::new(dst).decode(&dec.decrypt(&small));
    assert_ne!(&decoded[..32], &values[..]);
}

#[test]
#[should_panic(expected = "out of field")]
fn share_vector_validates_field() {
    use spot::proto::share::{Party, ShareVec};
    let _ = ShareVec::new(Party::Client, 97, vec![97]);
}

#[test]
#[should_panic(expected = "larger than the overlap")]
fn patch_smaller_than_overlap_rejected() {
    use spot::core::patching::{decompose, PatchMode};
    use spot::tensor::Tensor;
    // k=5 tweaked overlap is 3: a 3x3 patch has zero stride
    let input = Tensor::zeros(1, 10, 10);
    let _ = decompose(&input, 3, 3, 5, PatchMode::Tweaked);
}
