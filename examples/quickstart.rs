//! Quickstart: one secure SPOT convolution, end to end.
//!
//! The client encrypts a small feature map as overlap-tweaked patches,
//! the server convolves each arriving ciphertext independently and
//! returns masked shares, and the client assembles its share of the
//! result — which, combined with the server's share, equals the
//! plaintext convolution exactly.
//!
//! Run with: `cargo run --release --example quickstart`

use rand::SeedableRng;
use spot::core::patching::PatchMode;
use spot::core::spot as spot_conv;
use spot::he::prelude::*;
use spot::tensor::{conv2d, Kernel, Tensor};

fn main() {
    // 1. Cryptographic setup at the smallest rotation-capable level.
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let keygen = KeyGenerator::new(&ctx, &mut rng);
    println!(
        "BFV context: N = {}, |q| = {} bits, t = {}",
        ctx.degree(),
        ctx.params().level().total_coeff_bits(),
        ctx.params().plain_modulus()
    );

    // 2. The client's private input and the server's private model.
    let input = Tensor::random(8, 16, 16, 10, 7);
    let kernel = Kernel::random(16, 8, 3, 3, 5, 8);
    println!(
        "input: {}x{}x{}, kernel: {} -> {} channels, 3x3",
        input.channels(),
        input.height(),
        input.width(),
        kernel.in_channels(),
        kernel.out_channels()
    );

    // 3. SPOT secure convolution: 4x4 patches, overlap tweaking.
    let result = spot_conv::execute(
        &ctx,
        &keygen,
        &input,
        &kernel,
        1,
        (4, 4),
        PatchMode::Tweaked,
        &mut rng,
    );
    println!(
        "SPOT: {} input ciphertexts -> {} output ciphertexts",
        result.input_cts, result.output_cts
    );
    println!(
        "server HE ops: {} Mult, {} Rot, {} Add",
        result.counts.mult_plain, result.counts.rotate, result.counts.add
    );

    // 4. Verify against the plaintext reference.
    let expected = conv2d(&input, &kernel, 1);
    assert_eq!(result.reconstruct(), expected);
    println!("reconstructed shares match the plaintext convolution — OK");
}
