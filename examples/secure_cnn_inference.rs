//! Functional end-to-end secure inference of a small CNN: convolutions
//! under real BFV homomorphic encryption (all three schemes), ReLU and
//! max pooling via the simulated OT protocols on additive shares.
//!
//! The reconstructed secure output is bit-identical to the plaintext
//! forward pass for every scheme, and the protocol traffic is reported.
//!
//! Run with: `cargo run --release --example secure_cnn_inference`

use rand::SeedableRng;
use spot::core::inference::{Scheme, TinyCnn};
use spot::he::prelude::*;
use spot::tensor::Tensor;

fn main() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = rand::rngs::StdRng::seed_from_u64(2024);
    let keygen = KeyGenerator::new(&ctx, &mut rng);

    let cnn = TinyCnn::new(11);
    let image = Tensor::random(2, 8, 8, 6, 3);
    let expected = cnn.forward_plain(&image);
    println!("tiny CNN: conv(2->4, 3x3) -> ReLU -> maxpool -> conv(4->4, 3x3) -> ReLU");
    println!(
        "input 2x8x8, output {}x{}x{}\n",
        expected.channels(),
        expected.height(),
        expected.width()
    );

    for scheme in Scheme::ALL {
        let (output, channel) = cnn.forward_secure(&ctx, &keygen, &image, scheme, &mut rng);
        assert_eq!(output, expected, "{} output mismatch", scheme.name());
        println!(
            "{:<11} OK — secure output matches plaintext; {:>8} bytes up, {:>8} bytes down (non-linear protocol traffic)",
            scheme.name(),
            channel.upstream().bytes,
            channel.downstream().bytes
        );
    }
    println!("\nfirst output channel (plaintext == reconstructed secure):");
    for y in 0..expected.height() {
        let row: Vec<String> = (0..expected.width())
            .map(|x| format!("{:>5}", expected.at(0, y, x)))
            .collect();
        println!("  {}", row.join(" "));
    }
}
