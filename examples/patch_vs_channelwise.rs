//! Head-to-head on real hardware (this machine, real HE): SPOT's
//! structure patching versus channel-wise packing versus Cheetah's
//! coefficient encoding on the same convolution — wall-clock time,
//! operation counts, and ciphertext counts.
//!
//! Unlike the simulator-driven tables, everything here is actually
//! executed under BFV, so it doubles as a cross-check that all three
//! schemes produce identical (correct) results.
//!
//! Run with: `cargo run --release --example patch_vs_channelwise`

use rand::SeedableRng;
use spot::core::patching::PatchMode;
use spot::core::{channelwise, cheetah, spot as spot_conv};
use spot::he::prelude::*;
use spot::tensor::{conv2d, Kernel, Tensor};
use std::time::Instant;

fn main() {
    let ctx = Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let keygen = KeyGenerator::new(&ctx, &mut rng);

    // A scaled-down ResNet-style layer that fits real HE comfortably.
    let input = Tensor::random(16, 16, 16, 8, 21);
    let kernel = Kernel::random(32, 16, 3, 3, 4, 22);
    let expected = conv2d(&input, &kernel, 1);
    println!("layer: 16x16, 16 -> 32 channels, 3x3 kernel, N = 4096\n");
    println!(
        "{:<28} {:>8} {:>7} {:>7} {:>7} {:>6} {:>6}",
        "scheme", "time", "Mult", "Rot", "Add", "in-ct", "out-ct"
    );

    let t0 = Instant::now();
    let cw = channelwise::execute(&ctx, &keygen, &input, &kernel, 1, &mut rng);
    let t_cw = t0.elapsed();
    assert_eq!(cw.reconstruct(), expected);
    println!(
        "{:<28} {:>7.2}s {:>7} {:>7} {:>7} {:>6} {:>6}",
        "channel-wise (CrypTFlow2)",
        t_cw.as_secs_f64(),
        cw.counts.mult_plain,
        cw.counts.rotate,
        cw.counts.add,
        cw.input_cts,
        cw.output_cts
    );

    let t0 = Instant::now();
    let ch = cheetah::execute(&ctx, &keygen, &input, &kernel, 1, &mut rng);
    let t_ch = t0.elapsed();
    assert_eq!(ch.reconstruct(), expected);
    println!(
        "{:<28} {:>7.2}s {:>7} {:>7} {:>7} {:>6} {:>6}",
        "coefficient (Cheetah)",
        t_ch.as_secs_f64(),
        ch.counts.mult_plain,
        ch.counts.rotate,
        ch.counts.add,
        ch.input_cts,
        ch.output_cts
    );

    for (label, mode) in [
        ("SPOT (vanilla patching)", PatchMode::Vanilla),
        ("SPOT (overlap tweaking)", PatchMode::Tweaked),
    ] {
        let t0 = Instant::now();
        let sp = spot_conv::execute(&ctx, &keygen, &input, &kernel, 1, (4, 4), mode, &mut rng);
        let t_sp = t0.elapsed();
        assert_eq!(sp.reconstruct(), expected);
        println!(
            "{:<28} {:>7.2}s {:>7} {:>7} {:>7} {:>6} {:>6}",
            label,
            t_sp.as_secs_f64(),
            sp.counts.mult_plain,
            sp.counts.rotate,
            sp.counts.add,
            sp.input_cts,
            sp.output_cts
        );
    }

    println!("\nall four secure results equal the plaintext convolution.");
    println!(
        "note: wall-clock times here reflect THIS machine's single-core BFV;\n\
         the paper-shape comparisons (device scaling, threading, links) come\n\
         from the calibrated simulator — see crates/bench."
    );
}
