//! A miniature residual network run end to end under the secure
//! protocol: SPOT convolutions under real BFV, ReLU / global average
//! pooling via the simulated OT protocols, the residual skip connection
//! as a *local* share addition (free!), and the classifier head as a
//! 1×1 SPOT convolution.
//!
//! Architecture (CIFAR-scale):
//!
//! ```text
//! conv 2->4 (3x3) - ReLU - [ conv 4->4 - ReLU - conv 4->4  + skip ] - ReLU
//!   - global avgpool - FC 4->3
//! ```
//!
//! Run with: `cargo run --release --example mini_resnet`

use rand::rngs::StdRng;
use rand::SeedableRng;
use spot::core::patching::PatchMode;
use spot::core::spot as spot_conv;
use spot::he::prelude::*;
use spot::proto::channel::Channel;
use spot::proto::relu::{
    global_avgpool_on_shares, reconstruct_signed, relu_on_shares, share_tensor,
};
use spot::proto::share::ShareVec;
use spot::tensor::conv::{conv2d, global_avgpool, relu};
use spot::tensor::{Kernel, Tensor};
use std::sync::Arc;

struct MiniResNet {
    stem: Kernel,
    block1: Kernel,
    block2: Kernel,
    head: Kernel, // FC as 1x1 conv over the pooled 4x1x1 tensor
}

impl MiniResNet {
    fn new(seed: u64) -> Self {
        Self {
            stem: Kernel::random(4, 2, 3, 3, 3, seed),
            block1: Kernel::random(4, 4, 3, 3, 3, seed + 1),
            block2: Kernel::random(4, 4, 3, 3, 3, seed + 2),
            head: Kernel::random(3, 4, 1, 1, 3, seed + 3),
        }
    }

    fn forward_plain(&self, x: &Tensor) -> Vec<i64> {
        let x = relu(&conv2d(x, &self.stem, 1));
        let y = conv2d(&relu(&conv2d(&x, &self.block1, 1)), &self.block2, 1);
        let x = relu(&y.add(&x)); // residual
        let pooled = global_avgpool(&x);
        conv2d(&pooled, &self.head, 1).data().to_vec()
    }
}

/// Runs one SPOT secure conv and returns the result as shares.
fn secure_conv<R: rand::Rng>(
    ctx: &Arc<spot::he::context::Context>,
    kg: &KeyGenerator,
    input: &Tensor,
    kernel: &Kernel,
    patch: (usize, usize),
    rng: &mut R,
) -> (ShareVec, ShareVec) {
    let t = ctx.params().plain_modulus();
    let r = spot_conv::execute(ctx, kg, input, kernel, 1, patch, PatchMode::Tweaked, rng);
    let wrap = |v: &Tensor, party| {
        ShareVec::new(
            party,
            t,
            v.data()
                .iter()
                .map(|&x| x.rem_euclid(t as i64) as u64)
                .collect(),
        )
    };
    (
        wrap(&r.client_share, spot::proto::share::Party::Client),
        wrap(&r.server_share, spot::proto::share::Party::Server),
    )
}

fn to_tensor(c: &ShareVec, s: &ShareVec, channels: usize, h: usize, w: usize) -> Tensor {
    Tensor::from_vec(channels, h, w, reconstruct_signed(c, s))
}

fn main() {
    let ctx = spot::he::context::Context::new(EncryptionParams::new(ParamLevel::N4096));
    let mut rng = StdRng::seed_from_u64(314);
    let kg = KeyGenerator::new(&ctx, &mut rng);
    let t = ctx.params().plain_modulus();
    let mut channel = Channel::new();

    let net = MiniResNet::new(9);
    let image = Tensor::random(2, 8, 8, 4, 1);
    let expected = net.forward_plain(&image);

    // --- stem conv + ReLU ---
    let (c, s) = secure_conv(&ctx, &kg, &image, &net.stem, (4, 4), &mut rng);
    let (c, s) = relu_on_shares(&c, &s, &mut channel, &mut rng);
    let x_skip = to_tensor(&c, &s, 4, 8, 8); // reconstructed-for-simulation

    // --- residual block: conv, ReLU, conv, + skip ---
    let (c1, s1) = secure_conv(&ctx, &kg, &x_skip, &net.block1, (4, 4), &mut rng);
    let (c1, s1) = relu_on_shares(&c1, &s1, &mut channel, &mut rng);
    let mid = to_tensor(&c1, &s1, 4, 8, 8);
    let (c2, s2) = secure_conv(&ctx, &kg, &mid, &net.block2, (4, 4), &mut rng);
    // residual addition is LOCAL on shares — zero communication
    let (skip_c, skip_s) = share_tensor(x_skip.data(), t, &mut rng);
    let (c2, s2) = (c2.add(&skip_c), s2.add(&skip_s));
    let (c2, s2) = relu_on_shares(&c2, &s2, &mut channel, &mut rng);

    // --- global average pool (OT-assisted division) ---
    let (pc, ps) = global_avgpool_on_shares(&c2, &s2, 4, 64, &mut channel, &mut rng);
    let pooled = Tensor::from_vec(4, 1, 1, reconstruct_signed(&pc, &ps));

    // --- classifier head: FC as a 1x1 SPOT conv ---
    let (hc, hs) = secure_conv(&ctx, &kg, &pooled, &net.head, (1, 1), &mut rng);
    let logits = reconstruct_signed(&hc, &hs);

    println!("secure logits:    {logits:?}");
    println!("plaintext logits: {expected:?}");
    assert_eq!(logits, expected, "secure inference must be bit-exact");
    println!(
        "\nbit-exact across stem -> residual block (local share add for the\n\
         skip!) -> avgpool -> FC head; non-linear protocol traffic: {} bytes",
        channel.total_bytes()
    );
}
