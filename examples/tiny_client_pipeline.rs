//! The paper's headline phenomenon, visualized: the *linear computation
//! stall* of channel-wise packing on a memory-constrained client versus
//! SPOT's per-ciphertext streaming (Figs. 3 and 6).
//!
//! Simulates one ResNet convolution layer on the IoT controller and
//! prints a Gantt-style timeline for both schemes plus the timing
//! breakdown.
//!
//! Run with: `cargo run --release --example tiny_client_pipeline`

use spot::core::inference::{plan_conv, Scheme};
use spot::pipeline::device::DeviceProfile;
use spot::pipeline::sim::{simulate_conv, SimConfig};
use spot::tensor::ConvShape;

fn gantt(scheme: Scheme, shape: &ConvShape) {
    let plan = plan_conv(shape, scheme, true);
    let cfg = SimConfig::with_client(DeviceProfile::iot_k27());
    let res = simulate_conv(&plan, &cfg);
    println!(
        "--- {} at {} ({} input cts, {} output cts) ---",
        scheme.name(),
        plan.level,
        plan.input_cts,
        plan.output_cts
    );
    println!(
        "total {:.2}s | client-HE {:.2}s | server-HE {:.2}s | ReLU {:.2}s | stall {:.2}s",
        res.timing.total_s,
        res.timing.client_he_s,
        res.timing.server_he_s,
        res.timing.relu_s,
        res.timing.stall_s
    );
    // compact timeline: one char per 2% of the makespan
    let span = res.timing.total_s;
    for lane in ["client", "link-up", "server", "link-down"] {
        let mut bar = vec![b'.'; 50];
        for ev in res.timeline.iter().filter(|e| e.lane == lane) {
            let a = ((ev.start / span) * 50.0) as usize;
            let b = (((ev.end / span) * 50.0) as usize).min(49);
            for c in bar.iter_mut().take(b + 1).skip(a) {
                *c = b'#';
            }
        }
        println!("{:>9} |{}|", lane, String::from_utf8(bar).unwrap());
    }
    println!();
}

fn main() {
    let shape = ConvShape::new(28, 28, 128, 128, 3, 1);
    println!(
        "one 3x3 convolution, {}x{} input, {} -> {} channels, IoT client\n",
        shape.width, shape.height, shape.c_in, shape.c_out
    );
    gantt(Scheme::CrypTFlow2, &shape);
    gantt(Scheme::Spot, &shape);
    println!(
        "Under channel-wise packing the server lane stays dark until the\n\
         last upload lands (the stall); under SPOT server work and\n\
         downloads overlap the client's remaining encryptions."
    );
}
